//! Minimal data-parallel helper for delta computation.
//!
//! Building a dataset computes tens of thousands of independent diffs —
//! embarrassingly parallel work that dominates generator runtime. This is
//! a dependency-free scoped-thread map preserving input order; it is not a
//! general-purpose thread pool (chunks are static, work per item is
//! assumed roughly uniform, which holds for diffs over similarly-sized
//! versions).

/// Applies `f` to every item, splitting the input across up to
/// `max_threads` OS threads (or available parallelism, whichever is
/// smaller). Results are returned in input order. Falls back to a
/// sequential map for small inputs where spawn overhead dominates.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    max_threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = max_threads.min(hw).max(1);
    if threads == 1 || items.len() < 64 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn small_inputs_run_sequentially() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 8, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn single_thread_allowed() {
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, 1, |&x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn matches_sequential_result() {
        let items: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let seq: Vec<usize> = items.iter().map(|s| s.len()).collect();
        let par = parallel_map(&items, 6, |s| s.len());
        assert_eq!(seq, par);
    }
}
