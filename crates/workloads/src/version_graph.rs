//! Synthetic version-graph generation (step one of the paper's suite).
//!
//! The generator grows a mainline of commits; every `branch_interval`
//! commits it may (with `branch_prob`) open `1..=branch_limit` branches of
//! `1..=branch_length` commits each, and branches may merge back into the
//! mainline, producing a DAG with the branch/merge structure DataHub
//! permits. "Flat" parameterizations (frequent, short branches) give the
//! paper's DC shape; "mostly-linear" ones (rare, long branches) give LC.

use dsv_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the version-graph generator (§5.1 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct GraphParams {
    /// Total number of versions to generate.
    pub commits: usize,
    /// Number of consecutive mainline versions after which a branch point
    /// may occur.
    pub branch_interval: usize,
    /// Probability of actually branching at a branch point.
    pub branch_prob: f64,
    /// Maximum number of branches opened at one point (uniform in
    /// `1..=branch_limit`).
    pub branch_limit: usize,
    /// Maximum commits per branch (uniform in `1..=branch_length`).
    pub branch_length: usize,
    /// Probability that a finished branch merges back into the mainline.
    pub merge_prob: f64,
}

impl Default for GraphParams {
    fn default() -> Self {
        GraphParams {
            commits: 100,
            branch_interval: 5,
            branch_prob: 0.5,
            branch_limit: 2,
            branch_length: 5,
            merge_prob: 0.3,
        }
    }
}

/// A generated version DAG. Version ids are assigned in creation order, so
/// every edge goes from a lower id to a higher id (topologically sorted by
/// construction).
#[derive(Debug, Clone)]
pub struct VersionGraph {
    /// Number of versions.
    pub n: usize,
    /// Derivation edges `(parent, child)`.
    pub edges: Vec<(u32, u32)>,
    /// Parents of each version (1 for commits, 2 for merges, 0 for the
    /// root).
    pub parents: Vec<Vec<u32>>,
}

impl VersionGraph {
    /// Generates a version graph with the given parameters and seed.
    pub fn generate(params: &GraphParams, seed: u64) -> Self {
        assert!(params.commits >= 1, "need at least one commit");
        assert!(params.branch_interval >= 1);
        assert!(params.branch_limit >= 1);
        assert!(params.branch_length >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut parents: Vec<Vec<u32>> = vec![Vec::new()]; // root
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut head: u32 = 0; // current mainline head
        let mut since_branch = 0usize;

        let new_version =
            |parents: &mut Vec<Vec<u32>>, edges: &mut Vec<(u32, u32)>, from: &[u32]| -> u32 {
                let id = parents.len() as u32;
                parents.push(from.to_vec());
                for &p in from {
                    edges.push((p, id));
                }
                id
            };

        while parents.len() < params.commits {
            since_branch += 1;
            let at_branch_point = since_branch >= params.branch_interval;
            if at_branch_point && rng.gen_bool(params.branch_prob) {
                since_branch = 0;
                let branches = rng.gen_range(1..=params.branch_limit);
                let branch_root = head;
                for _ in 0..branches {
                    if parents.len() >= params.commits {
                        break;
                    }
                    let len = rng.gen_range(1..=params.branch_length);
                    let mut tip = branch_root;
                    for _ in 0..len {
                        if parents.len() >= params.commits {
                            break;
                        }
                        tip = new_version(&mut parents, &mut edges, &[tip]);
                    }
                    // Possibly merge the branch tip back into the mainline.
                    if tip != branch_root
                        && parents.len() < params.commits
                        && rng.gen_bool(params.merge_prob)
                    {
                        head = new_version(&mut parents, &mut edges, &[head, tip]);
                    }
                }
            } else {
                head = new_version(&mut parents, &mut edges, &[head]);
            }
        }

        VersionGraph {
            n: parents.len(),
            edges,
            parents,
        }
    }

    /// The graph as a [`DiGraph`] (edge weight = unit), e.g. for BFS
    /// sampling and DAG validation.
    pub fn to_digraph(&self) -> DiGraph<()> {
        let mut g = DiGraph::with_edge_capacity(self.n, self.edges.len());
        for &(u, v) in &self.edges {
            g.add_edge(NodeId(u), NodeId(v), ());
        }
        g
    }

    /// Number of merge commits (versions with 2+ parents).
    pub fn merge_count(&self) -> usize {
        self.parents.iter().filter(|p| p.len() >= 2).count()
    }

    /// All unordered version pairs within `hops` of each other in the
    /// undirected version graph — the paper's rule for which deltas to
    /// reveal ("we compute the delta with all versions in a k-hop
    /// distance"). Pairs are returned with `a < b`, each once.
    pub fn pairs_within_hops(&self, hops: usize) -> Vec<(u32, u32)> {
        self.pairs_within_hops_dist(hops)
            .into_iter()
            .map(|(a, b, _)| (a, b))
            .collect()
    }

    /// Like [`pairs_within_hops`](Self::pairs_within_hops) but also
    /// reporting the hop distance of each pair (used by the cost-only
    /// generator, which scales synthetic delta sizes with distance).
    pub fn pairs_within_hops_dist(&self, hops: usize) -> Vec<(u32, u32, u32)> {
        // Undirected adjacency.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut out = Vec::new();
        let mut dist = vec![u32::MAX; self.n];
        let mut touched: Vec<u32> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for s in 0..self.n as u32 {
            // Bounded BFS from s, collecting pairs (s, t>s).
            dist[s as usize] = 0;
            touched.push(s);
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                let d = dist[v as usize];
                if d as usize >= hops {
                    continue;
                }
                for &u in &adj[v as usize] {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = d + 1;
                        touched.push(u);
                        if u > s {
                            out.push((s, u, d + 1));
                        }
                        queue.push_back(u);
                    }
                }
            }
            for &t in &touched {
                dist[t as usize] = u32::MAX;
            }
            touched.clear();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_graph::traversal::topo_sort;

    #[test]
    fn generates_exactly_n_commits() {
        let g = VersionGraph::generate(&GraphParams::default(), 7);
        assert_eq!(g.n, 100);
        assert_eq!(g.parents.len(), 100);
    }

    #[test]
    fn graph_is_a_dag_with_increasing_edges() {
        let g = VersionGraph::generate(&GraphParams::default(), 3);
        for &(u, v) in &g.edges {
            assert!(u < v, "edges must go forward in id order");
        }
        assert!(topo_sort(&g.to_digraph()).is_some());
    }

    #[test]
    fn root_has_no_parents_everyone_else_does() {
        let g = VersionGraph::generate(&GraphParams::default(), 11);
        assert!(g.parents[0].is_empty());
        for p in &g.parents[1..] {
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = VersionGraph::generate(&GraphParams::default(), 42);
        let b = VersionGraph::generate(&GraphParams::default(), 42);
        assert_eq!(a.edges, b.edges);
        let c = VersionGraph::generate(&GraphParams::default(), 43);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn flat_params_branch_more_than_linear() {
        let flat = GraphParams {
            commits: 400,
            branch_interval: 2,
            branch_prob: 0.9,
            branch_limit: 4,
            branch_length: 3,
            merge_prob: 0.4,
        };
        let linear = GraphParams {
            commits: 400,
            branch_interval: 50,
            branch_prob: 0.2,
            branch_limit: 1,
            branch_length: 10,
            merge_prob: 0.1,
        };
        let gf = VersionGraph::generate(&flat, 5);
        let gl = VersionGraph::generate(&linear, 5);
        let branchy = |g: &VersionGraph| {
            let mut out_deg = vec![0usize; g.n];
            for &(u, _) in &g.edges {
                out_deg[u as usize] += 1;
            }
            out_deg.iter().filter(|&&d| d >= 2).count()
        };
        assert!(branchy(&gf) > branchy(&gl) * 2);
    }

    #[test]
    fn merges_occur_with_positive_probability() {
        let params = GraphParams {
            commits: 500,
            merge_prob: 0.8,
            branch_prob: 0.9,
            branch_interval: 2,
            ..GraphParams::default()
        };
        let g = VersionGraph::generate(&params, 9);
        assert!(g.merge_count() > 0);
    }

    #[test]
    fn hop_pairs_of_a_chain() {
        // Force a pure chain: branch_prob = 0.
        let params = GraphParams {
            commits: 6,
            branch_prob: 0.0,
            ..GraphParams::default()
        };
        let g = VersionGraph::generate(&params, 1);
        assert_eq!(g.edges.len(), 5);
        let pairs1 = g.pairs_within_hops(1);
        assert_eq!(pairs1.len(), 5); // adjacent pairs only
        let pairs2 = g.pairs_within_hops(2);
        assert_eq!(pairs2.len(), 5 + 4);
        let all = g.pairs_within_hops(10);
        assert_eq!(all.len(), 6 * 5 / 2);
    }

    #[test]
    fn single_commit_graph() {
        let params = GraphParams {
            commits: 1,
            ..GraphParams::default()
        };
        let g = VersionGraph::generate(&params, 0);
        assert_eq!(g.n, 1);
        assert!(g.edges.is_empty());
        assert!(g.pairs_within_hops(5).is_empty());
    }
}
