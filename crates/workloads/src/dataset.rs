//! The two-step dataset builder (§5.1): version graph → contents → deltas.
//!
//! Step one generates a [`VersionGraph`]; step two derives each version's
//! CSV content from its (first) parent via random edit commands, then
//! computes **real deltas** — line scripts over the serialized tables —
//! between every pair of versions within `reveal_hops` of each other,
//! populating the `Δ`/`Φ` matrices under the chosen [`CostModel`].

use crate::table_gen::{base_table, random_commit, EditParams};
use crate::version_graph::{GraphParams, VersionGraph};
use crate::zipf::zipf_weights;
use dsv_core::{CostMatrix, CostPair, ProblemInstance};
use dsv_delta::cost::{delta_annotation, full_annotation, CostModel};
use dsv_delta::script::line_diff;
use dsv_obs as obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the full dataset builder.
#[derive(Debug, Clone, Copy)]
pub struct DatasetParams {
    /// Version-graph shape.
    pub graph: GraphParams,
    /// Content/edit shape.
    pub edits: EditParams,
    /// Reveal deltas between all pairs within this hop distance in the
    /// version graph (the paper uses 10 for DC, 25 for LC).
    pub reveal_hops: usize,
    /// How bytes map to `⟨Δ, Φ⟩`.
    pub cost_model: CostModel,
    /// Directed (one-way line scripts, asymmetric) or undirected
    /// (concatenated two-way scripts, symmetric).
    pub directed: bool,
    /// Keep the version contents in the built dataset (needed by the VCS
    /// and §5.2 experiments; drop for big optimization-only runs).
    pub keep_contents: bool,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            graph: GraphParams::default(),
            edits: EditParams::default(),
            reveal_hops: 5,
            cost_model: CostModel::Proportional,
            directed: true,
            keep_contents: false,
        }
    }
}

/// A generated workload: matrices ready for the optimizer, plus optional
/// raw contents and the version graph that produced them.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("DC", "LC", "BF", "LF", ...).
    pub name: String,
    /// The generating version graph (absent for fork workloads, which have
    /// none — as in the paper's BF/LF).
    pub graph: Option<VersionGraph>,
    /// The revealed cost matrices.
    pub matrix: CostMatrix,
    /// Raw serialized contents per version, if kept.
    pub contents: Option<Vec<Vec<u8>>>,
    /// Raw (uncompressed) byte size of each version.
    pub sizes: Vec<u64>,
}

impl Dataset {
    /// Wraps the matrix in a [`ProblemInstance`] (uniform access
    /// frequencies).
    pub fn instance(&self) -> ProblemInstance {
        ProblemInstance::new(self.matrix.clone())
    }

    /// Instance with Zipfian access frequencies (the paper's Fig. 16 uses
    /// exponent 2).
    pub fn instance_with_zipf(&self, exponent: f64, seed: u64) -> ProblemInstance {
        let w = zipf_weights(self.matrix.version_count(), exponent, seed);
        ProblemInstance::with_weights(self.matrix.clone(), w)
    }

    /// The **hybrid** instance: the matrix extended with per-version
    /// chunked cost estimates (incremental unique-chunk bytes under
    /// `params`, via `dsv-chunk`'s gear-hash chunker), so solvers choose
    /// Full / Delta / Chunked per version. Requires the dataset to have
    /// been built with contents kept (`None` otherwise).
    pub fn instance_with_chunked(
        &self,
        params: dsv_chunk::ChunkerParams,
    ) -> Option<ProblemInstance> {
        let contents = self.contents.as_ref()?;
        let pairs = dsv_chunk::chunked_cost_pairs(contents, params).ok()?;
        let mut matrix = self.matrix.clone();
        for (i, pair) in pairs.into_iter().enumerate() {
            matrix.set_chunked(i as u32, pair);
        }
        Some(ProblemInstance::new(matrix))
    }

    /// Number of versions.
    pub fn version_count(&self) -> usize {
        self.matrix.version_count()
    }

    /// Number of revealed deltas (symmetric entries stored once count
    /// once, matching how `CostMatrix` stores them).
    pub fn delta_count(&self) -> usize {
        self.matrix.revealed_count()
    }

    /// Mean raw version size in bytes.
    pub fn average_version_size(&self) -> f64 {
        if self.sizes.is_empty() {
            return 0.0;
        }
        self.sizes.iter().sum::<u64>() as f64 / self.sizes.len() as f64
    }

    /// Delta storage sizes normalized by the average version size — the
    /// distribution the paper plots in Figure 12 (right).
    pub fn normalized_delta_sizes(&self) -> Vec<f64> {
        let avg = self.average_version_size().max(1.0);
        self.matrix
            .revealed_entries()
            .map(|(_, _, p)| p.storage as f64 / avg)
            .collect()
    }
}

/// Builds a dataset: generates the version graph and contents, computes
/// the deltas, and assembles the matrices.
pub fn build(name: &str, params: &DatasetParams, seed: u64) -> Dataset {
    let build_span = obs::span!("build", versions = params.graph.commits).entered();
    let graph = VersionGraph::generate(&params.graph, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

    // Step two: contents. Version 0 is the base table; each later version
    // derives from its first parent (merges take the first parent's
    // content plus fresh edits, matching the paper's user-performed-merge
    // model).
    let contents_span = obs::span!("contents");
    let mut tables = Vec::with_capacity(graph.n);
    tables.push(base_table(&params.edits, &mut rng));
    for v in 1..graph.n {
        let parent = graph.parents[v][0] as usize;
        let (_, table) = random_commit(&params.edits, &tables[parent], &mut rng);
        tables.push(table);
    }
    let contents: Vec<Vec<u8>> = tables.iter().map(|t| t.to_csv()).collect();
    drop(tables);
    drop(contents_span);
    let sizes: Vec<u64> = contents.iter().map(|c| c.len() as u64).collect();

    // Matrices: diagonal from full contents, off-diagonal from real diffs
    // within the reveal neighbourhood.
    let diag: Vec<CostPair> = contents
        .iter()
        .map(|c| to_pair(full_annotation(params.cost_model, c)))
        .collect();
    let mut matrix = if params.directed {
        CostMatrix::directed(diag)
    } else {
        CostMatrix::undirected(diag)
    };
    // Deltas are independent per pair: compute them on the dsv-par
    // work-stealing runtime (thread count from `DSV_THREADS` / overrides),
    // reveal sequentially (reveal order does not affect the matrix).
    let pairs = graph.pairs_within_hops(params.reveal_hops);
    let model = params.cost_model;
    let reveal_span = obs::span!("reveal", pairs = pairs.len()).entered();
    let annotated = dsv_par::par_map(&pairs, |&(a, b)| {
        let (ca, cb) = (&contents[a as usize], &contents[b as usize]);
        if params.directed {
            let fwd = line_diff(ca, cb).encode();
            let rev = line_diff(cb, ca).encode();
            (
                to_pair(delta_annotation(model, &fwd, cb.len())),
                Some(to_pair(delta_annotation(model, &rev, ca.len()))),
            )
        } else {
            // Undirected delta = concatenation of the two directional
            // scripts (§5.3's construction for DC/LC).
            let mut both = line_diff(ca, cb).encode();
            both.extend_from_slice(&line_diff(cb, ca).encode());
            let target = ca.len().max(cb.len());
            (to_pair(delta_annotation(model, &both, target)), None)
        }
    });
    for (&(a, b), (fwd, rev)) in pairs.iter().zip(annotated) {
        matrix.reveal(a, b, fwd);
        if let Some(rev) = rev {
            matrix.reveal(b, a, rev);
        }
    }
    drop(reveal_span);
    drop(build_span);

    Dataset {
        name: name.to_owned(),
        graph: Some(graph),
        matrix,
        contents: params.keep_contents.then_some(contents),
        sizes,
    }
}

pub(crate) fn to_pair(ann: dsv_delta::cost::CostAnnotation) -> CostPair {
    CostPair::new(ann.storage, ann.recreation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_core::{plan, PlanSpec, Problem};

    fn solve(
        inst: &dsv_core::ProblemInstance,
        problem: Problem,
    ) -> Result<dsv_core::StorageSolution, dsv_core::SolveError> {
        plan(inst, &PlanSpec::new(problem)).map(|p| p.solution)
    }

    fn small_params() -> DatasetParams {
        DatasetParams {
            graph: GraphParams {
                commits: 40,
                ..GraphParams::default()
            },
            edits: EditParams {
                base_rows: 60,
                base_cols: 4,
                ..EditParams::default()
            },
            reveal_hops: 4,
            cost_model: CostModel::Proportional,
            directed: true,
            keep_contents: true,
        }
    }

    #[test]
    fn builds_consistent_dataset() {
        let ds = build("test", &small_params(), 42);
        assert_eq!(ds.version_count(), 40);
        assert_eq!(ds.sizes.len(), 40);
        assert!(ds.average_version_size() > 100.0);
        assert!(ds.delta_count() > 39, "at least the tree edges, both ways");
        let contents = ds.contents.as_ref().unwrap();
        assert_eq!(contents.len(), 40);
    }

    #[test]
    fn deltas_are_mostly_smaller_than_versions() {
        // Adjacent versions differ by a few edits: their deltas are far
        // smaller than materialization (the premise of the paper). A few
        // commits contain column rewrites that touch every line — those
        // legitimately cost near-full size — so assert on the median.
        let ds = build("test", &small_params(), 7);
        let g = ds.graph.as_ref().unwrap();
        let mut ratios: Vec<f64> = g
            .edges
            .iter()
            .map(|&(u, v)| {
                let pair = ds.matrix.get(u, v).expect("tree edge revealed");
                let full = ds.matrix.materialization(v);
                pair.storage as f64 / full.storage as f64
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ratios[ratios.len() / 2];
        assert!(median < 0.25, "median delta/full ratio {median}");
    }

    #[test]
    fn directed_dataset_has_asymmetric_entries() {
        let ds = build("test", &small_params(), 13);
        let g = ds.graph.as_ref().unwrap();
        let mut saw_asymmetry = false;
        for &(u, v) in &g.edges {
            let fwd = ds.matrix.get(u, v).unwrap();
            let rev = ds.matrix.get(v, u).unwrap();
            if fwd.storage != rev.storage {
                saw_asymmetry = true;
            }
        }
        assert!(saw_asymmetry, "row deletions should make deltas asymmetric");
    }

    #[test]
    fn undirected_dataset_is_symmetric() {
        let mut p = small_params();
        p.directed = false;
        let ds = build("test", &p, 13);
        assert!(ds.matrix.is_symmetric());
        let g = ds.graph.as_ref().unwrap();
        for &(u, v) in &g.edges {
            assert_eq!(ds.matrix.get(u, v), ds.matrix.get(v, u));
        }
    }

    #[test]
    fn instances_are_solvable_end_to_end() {
        let ds = build("test", &small_params(), 99);
        let inst = ds.instance();
        let mca = solve(&inst, Problem::MinStorage).unwrap();
        let spt = solve(&inst, Problem::MinRecreation).unwrap();
        // The core tradeoff must materialize in generated data.
        assert!(mca.storage_cost() < spt.storage_cost() / 3);
        assert!(spt.sum_recreation() <= mca.sum_recreation());
        let beta = mca.storage_cost() * 12 / 10;
        let lmg = solve(&inst, Problem::MinSumRecreationGivenStorage { beta }).unwrap();
        assert!(lmg.storage_cost() <= beta);
        assert!(lmg.sum_recreation() <= mca.sum_recreation());
    }

    #[test]
    fn hybrid_instance_reveals_chunked_costs() {
        let ds = build("test", &small_params(), 17);
        let inst = ds
            .instance_with_chunked(dsv_chunk::ChunkerParams::default())
            .expect("contents kept");
        assert_eq!(inst.matrix().chunked_count(), ds.version_count());
        // Increments never exceed materializing (dedup can only help), and
        // hybrid min-storage never stores more than binary.
        for i in 0..ds.version_count() as u32 {
            let c = inst.matrix().chunked(i).unwrap();
            assert!(c.storage <= inst.matrix().materialization(i).storage * 2);
        }
        let hybrid = solve(&inst, Problem::MinStorage).unwrap();
        let binary = solve(&ds.instance(), Problem::MinStorage).unwrap();
        assert!(hybrid.storage_cost() <= binary.storage_cost());
        // Without contents there is nothing to chunk.
        let mut p = small_params();
        p.keep_contents = false;
        let no_contents = build("test", &p, 17);
        assert!(no_contents
            .instance_with_chunked(dsv_chunk::ChunkerParams::default())
            .is_none());
    }

    #[test]
    fn zipf_instance_carries_weights() {
        let ds = build("test", &small_params(), 3);
        let inst = ds.instance_with_zipf(2.0, 5);
        assert!(inst.weights().is_some());
        assert_eq!(inst.weights().unwrap().len(), 40);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build("a", &small_params(), 123);
        let b = build("b", &small_params(), 123);
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.matrix.revealed_count(), b.matrix.revealed_count());
    }

    #[test]
    fn cost_model_changes_phi_delta_relationship() {
        let mut p = small_params();
        p.cost_model = CostModel::CompressedStorage;
        let compressed = build("c", &p, 21);
        // Diagonal: compressed storage never exceeds raw recreation (the
        // store falls back to raw payloads), and strictly improves for
        // most versions. Random-hex cell values are nearly incompressible
        // by construction, so the *margin* is small; the invariant that
        // matters is storage <= recreation with strict improvement being
        // the norm.
        let mut total_storage = 0u64;
        let mut total_recreation = 0u64;
        let mut strictly_below = 0usize;
        for i in 0..compressed.version_count() as u32 {
            let m = compressed.matrix.materialization(i);
            assert!(
                m.storage <= m.recreation,
                "v{i}: {} > {}",
                m.storage,
                m.recreation
            );
            strictly_below += usize::from(m.storage < m.recreation);
            total_storage += m.storage;
            total_recreation += m.recreation;
        }
        assert!(total_storage < total_recreation);
        assert!(strictly_below * 2 > compressed.version_count());
    }
}
