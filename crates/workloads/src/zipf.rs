//! Zipfian access frequencies.
//!
//! The paper's workload-aware experiment (Fig. 16) assigns each version an
//! access frequency from a Zipfian distribution with exponent 2, noting
//! that "real-world access frequencies are known to follow such
//! distributions". Ranks are randomly assigned to versions (the hottest
//! version is not necessarily the newest).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns `n` access frequencies following `w(rank) = rank^(-exponent)`,
/// with ranks randomly permuted over versions. Weights are relative (they
/// do not sum to 1).
pub fn zipf_weights(n: usize, exponent: f64, seed: u64) -> Vec<f64> {
    assert!(exponent >= 0.0 && exponent.is_finite());
    let mut ranks: Vec<usize> = (1..=n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ranks.shuffle(&mut rng);
    ranks
        .into_iter()
        .map(|r| (r as f64).powf(-exponent))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_positive_and_bounded() {
        let w = zipf_weights(100, 2.0, 1);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn exactly_one_version_gets_rank_one() {
        let w = zipf_weights(50, 2.0, 2);
        let hot = w.iter().filter(|&&x| (x - 1.0).abs() < 1e-12).count();
        assert_eq!(hot, 1);
    }

    #[test]
    fn heavier_exponent_is_more_skewed() {
        let w1 = zipf_weights(1000, 1.0, 3);
        let w2 = zipf_weights(1000, 2.0, 3);
        let mass_ratio = |w: &[f64]| {
            let mut sorted: Vec<f64> = w.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top: f64 = sorted[..10].iter().sum();
            let total: f64 = sorted.iter().sum();
            top / total
        };
        assert!(mass_ratio(&w2) > mass_ratio(&w1));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let w = zipf_weights(10, 0.0, 4);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(zipf_weights(20, 2.0, 7), zipf_weights(20, 2.0, 7));
        assert_ne!(zipf_weights(20, 2.0, 7), zipf_weights(20, 2.0, 8));
    }
}
