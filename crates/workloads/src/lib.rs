#![warn(missing_docs)]

//! Workload generators reproducing the paper's datasets (§5.1).
//!
//! The paper evaluates on four workloads; none are redistributable (two are
//! synthetic, two are derived from GitHub forks), so this crate regenerates
//! their *shape*:
//!
//! - [`version_graph`]: the two-step synthetic suite — first a version DAG
//!   driven by `commits / branch_interval / branch_prob / branch_limit /
//!   branch_length`, then CSV contents mutated by the paper's six edit
//!   commands, with deltas revealed within a k-hop neighbourhood. Presets
//!   [`presets::densely_connected`] (DC) and [`presets::linear_chain`]
//!   (LC).
//! - [`forks`]: fork-style workloads — one base file, per-fork edit
//!   sequences, all-pairs deltas for pairs within a size-difference
//!   threshold (how the paper processed the Bootstrap/Linux forks).
//!   Presets [`presets::bootstrap_forks`] (BF) and [`presets::linux_forks`]
//!   (LF).
//! - [`synthetic`]: cost-only instances (no file contents) for the
//!   running-time experiment (Fig. 17), where only the `Δ`/`Φ`
//!   distributions matter, at version counts where materializing contents
//!   would be pointless.
//! - [`zipf`]: Zipfian access frequencies (exponent 2 in the paper's
//!   workload-aware experiment, Fig. 16).
//! - [`dedup`]: a chain of shifted/overlapping versions — the
//!   dedup-friendly workload on which the chunked substrate (dsv-chunk)
//!   is compared against Full/Delta plans. Preset
//!   [`presets::dedup_chain`] (DD).
//!
//! All generators are deterministic given a seed.

pub mod dataset;
pub mod dedup;
pub mod forks;
pub mod presets;
pub mod synthetic;
pub mod table_gen;
pub mod version_graph;
pub mod zipf;

pub use dataset::{Dataset, DatasetParams};
pub use dedup::DedupParams;
pub use forks::ForkParams;
pub use presets::Preset;
pub use version_graph::{GraphParams, VersionGraph};
pub use zipf::zipf_weights;
