//! Cost-only instance generation for scaling experiments.
//!
//! The paper's running-time experiment (Fig. 17) uses version graphs with
//! up to 8×10⁴ versions. Materializing contents at that scale serves no
//! purpose — only the `Δ`/`Φ` matrices reach the solver — so this
//! generator produces matrices directly: version sizes follow a bounded
//! random walk along the version graph, per-edge delta sizes are drawn
//! around a configurable mean, and k-hop pair deltas grow with hop
//! distance (deltas between distant versions are bigger, as in the
//! materialized datasets). Distributions were tuned to match the
//! materializing builder on small instances (see the crate tests).

use crate::dataset::Dataset;
use crate::version_graph::{GraphParams, VersionGraph};
use dsv_core::{CostMatrix, CostPair};
use dsv_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the cost-only generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// Version-graph shape.
    pub graph: GraphParams,
    /// Reveal deltas within this hop distance.
    pub reveal_hops: usize,
    /// Mean full version size in bytes.
    pub base_size: u64,
    /// Mean delta size between adjacent versions.
    pub delta_mean: u64,
    /// Directed (asymmetric jitter per direction) or undirected.
    pub directed: bool,
    /// `Φ = Δ` when 1.0; larger values make recreation proportionally
    /// more expensive than storage (crudely modelling compressed deltas).
    pub phi_factor: f64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            graph: GraphParams::default(),
            reveal_hops: 5,
            base_size: 400_000,
            delta_mean: 4_000,
            directed: true,
            phi_factor: 1.0,
        }
    }
}

/// Builds a cost-only dataset (no contents).
pub fn build(name: &str, params: &SyntheticParams, seed: u64) -> Dataset {
    let _build = obs::span!("build", versions = params.graph.commits).entered();
    let graph = VersionGraph::generate(&params.graph, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);

    // Version sizes: random walk along the first-parent tree, bounded
    // below at half the base size.
    let mut sizes = vec![0u64; graph.n];
    sizes[0] = params.base_size;
    for v in 1..graph.n {
        let parent = graph.parents[v][0] as usize;
        let step = params.delta_mean.max(1);
        let up = rng.gen_bool(0.5);
        let amount = rng.gen_range(0..=step);
        sizes[v] = if up {
            sizes[parent].saturating_add(amount)
        } else {
            sizes[parent]
                .saturating_sub(amount)
                .max(params.base_size / 2)
        };
    }

    let phi = |delta: u64, f: f64| -> u64 { (delta as f64 * f).round() as u64 };
    let diag: Vec<CostPair> = sizes
        .iter()
        .map(|&s| CostPair::new(s, phi(s, params.phi_factor.max(1.0))))
        .collect();
    let mut matrix = if params.directed {
        CostMatrix::directed(diag)
    } else {
        CostMatrix::undirected(diag)
    };

    // Per-pair deltas: grow with hop distance, jittered, clamped below the
    // smaller version's full size (triangle-ish sanity).
    let delta_for = |hops: u32, a: u32, b: u32, rng: &mut StdRng| -> u64 {
        let mean = params.delta_mean.max(1) * u64::from(hops);
        let jitter = rng.gen_range(mean / 2..=mean + mean / 2);
        jitter.min(sizes[a as usize].min(sizes[b as usize]))
    };
    let pairs = graph.pairs_within_hops_dist(params.reveal_hops);
    let reveal_span = obs::span!("reveal", pairs = pairs.len()).entered();
    for (a, b, hops) in pairs {
        if params.directed {
            let fwd = delta_for(hops, a, b, &mut rng);
            matrix.reveal(a, b, CostPair::new(fwd, phi(fwd, params.phi_factor)));
            let rev = delta_for(hops, a, b, &mut rng);
            matrix.reveal(b, a, CostPair::new(rev, phi(rev, params.phi_factor)));
        } else {
            let d = delta_for(hops, a, b, &mut rng);
            matrix.reveal(a, b, CostPair::new(d, phi(d, params.phi_factor)));
        }
    }
    drop(reveal_span);

    Dataset {
        name: name.to_owned(),
        graph: Some(graph),
        matrix,
        contents: None,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_core::{plan, PlanSpec, Problem};

    fn solve(
        inst: &dsv_core::ProblemInstance,
        problem: Problem,
    ) -> Result<dsv_core::StorageSolution, dsv_core::SolveError> {
        plan(inst, &PlanSpec::new(problem)).map(|p| p.solution)
    }

    #[test]
    fn scales_to_thousands_quickly() {
        let params = SyntheticParams {
            graph: GraphParams {
                commits: 5000,
                ..GraphParams::default()
            },
            ..SyntheticParams::default()
        };
        let ds = build("syn", &params, 1);
        assert_eq!(ds.version_count(), 5000);
        assert!(ds.contents.is_none());
        assert!(ds.matrix.revealed_count() > 5000);
    }

    #[test]
    fn instances_are_solvable() {
        let params = SyntheticParams {
            graph: GraphParams {
                commits: 300,
                ..GraphParams::default()
            },
            ..SyntheticParams::default()
        };
        let ds = build("syn", &params, 2);
        let inst = ds.instance();
        let mca = solve(&inst, Problem::MinStorage).unwrap();
        let spt = solve(&inst, Problem::MinRecreation).unwrap();
        assert!(mca.storage_cost() < spt.storage_cost() / 5);
    }

    #[test]
    fn deltas_grow_with_hops() {
        let params = SyntheticParams {
            graph: GraphParams {
                commits: 200,
                branch_prob: 0.0,
                ..GraphParams::default()
            },
            reveal_hops: 8,
            ..SyntheticParams::default()
        };
        let ds = build("syn", &params, 3);
        let g = ds.graph.as_ref().unwrap();
        let mut by_hops: Vec<(u32, u64)> = g
            .pairs_within_hops_dist(8)
            .into_iter()
            .map(|(a, b, h)| (h, ds.matrix.get(a, b).unwrap().storage))
            .collect();
        by_hops.sort();
        let avg = |h: u32| {
            let v: Vec<u64> = by_hops
                .iter()
                .filter(|(x, _)| *x == h)
                .map(|(_, d)| *d)
                .collect();
            v.iter().sum::<u64>() as f64 / v.len().max(1) as f64
        };
        assert!(avg(8) > avg(1) * 3.0);
    }

    #[test]
    fn phi_factor_splits_the_matrices() {
        let params = SyntheticParams {
            graph: GraphParams {
                commits: 50,
                ..GraphParams::default()
            },
            phi_factor: 3.0,
            ..SyntheticParams::default()
        };
        let ds = build("syn", &params, 4);
        let (i, j, pair) = ds.matrix.revealed_entries().next().unwrap();
        let _ = (i, j);
        assert!(pair.recreation >= pair.storage * 2);
    }

    #[test]
    fn deterministic() {
        let params = SyntheticParams::default();
        let a = build("a", &params, 77);
        let b = build("b", &params, 77);
        assert_eq!(a.sizes, b.sizes);
    }
}
