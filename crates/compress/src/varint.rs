//! LEB128-style variable-length integer coding.
//!
//! Used by the LZ token stream, the delta wire format and the object
//! store's persistence format.

/// Appends `value` to `out` as a base-128 varint (7 bits per byte, high bit
/// = continuation). Returns the number of bytes written.
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`encode_u64`] would write for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Decodes a varint from the front of `input`. Returns the value and the
/// number of bytes consumed, or `None` on truncated/overlong input.
pub fn decode_u64(input: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i == 10 {
            return None; // > 64 bits
        }
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute one bit.
        if i == 9 && payload > 1 {
            return None;
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
    }
    None // ran out of bytes mid-varint
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        let n = encode_u64(v, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(encoded_len(v), n);
        let (decoded, used) = decode_u64(&buf).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, n);
        n
    }

    #[test]
    fn small_values_are_one_byte() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(1), 1);
        assert_eq!(roundtrip(127), 1);
    }

    #[test]
    fn boundaries() {
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16383), 2);
        assert_eq!(roundtrip(16384), 3);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = Vec::new();
        encode_u64(u64::MAX, &mut buf);
        buf.pop();
        assert_eq!(decode_u64(&buf), None);
        assert_eq!(decode_u64(&[]), None);
        assert_eq!(decode_u64(&[0x80]), None);
    }

    #[test]
    fn decode_rejects_overlong() {
        // 11 continuation bytes.
        let buf = [0x80u8; 11];
        assert_eq!(decode_u64(&buf), None);
        // 10th byte contributing more than 1 bit.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x7f);
        assert_eq!(decode_u64(&buf), None);
    }

    #[test]
    fn decode_uses_prefix_only() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        buf.extend_from_slice(b"trailing");
        let (v, used) = decode_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }
}
