//! An LZ77-style compressor with a hash-chain match finder.
//!
//! ## Format
//!
//! ```text
//! varint original_len
//! token*
//! token := varint header
//!          header = (literal_len << 1) | 0  followed by literal bytes
//!          header = (match_len   << 1) | 1  followed by varint distance
//! ```
//!
//! Matches always have `match_len >= MIN_MATCH` and `distance >= 1`;
//! overlapping copies (distance < length) are allowed and reproduce runs.

use crate::varint::{decode_u64, encode_u64};

/// Minimum length worth encoding as a match (shorter is cheaper literal).
const MIN_MATCH: usize = 4;
/// 16-bit hash table of chain heads.
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Tuning knobs for the match finder.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Sliding-window size: matches may only reach this far back.
    pub window: usize,
    /// Maximum hash-chain entries probed per position (speed/ratio knob).
    pub max_chain: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            window: 1 << 16,
            max_chain: 32,
        }
    }
}

/// Decompression failure (corrupt or truncated input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Input ended in the middle of a token.
    Truncated,
    /// A match referenced bytes before the start of the output.
    BadDistance,
    /// Decoded output did not match the declared length.
    LengthMismatch {
        /// Length the stream header declared.
        declared: u64,
        /// Length actually decoded.
        actual: u64,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadDistance => write!(f, "match distance out of range"),
            CompressError::LengthMismatch { declared, actual } => {
                write!(f, "declared length {declared} but decoded {actual}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` with default [`Params`].
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, &Params::default())
}

/// Compresses `data` with explicit [`Params`].
pub fn compress_with(data: &[u8], params: &Params) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    encode_u64(data.len() as u64, &mut out);
    if data.is_empty() {
        return out;
    }

    // head[h] = most recent position with hash h; prev[i] = previous
    // position in i's chain. Positions offset by +1 so 0 = empty.
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; data.len()];

    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut s = from;
        while s < to {
            // Literal runs are varint-coded; no need to split, but keep
            // chunks bounded so the shift in the header can't overflow.
            let len = (to - s).min((u64::MAX >> 1) as usize);
            encode_u64((len as u64) << 1, out);
            out.extend_from_slice(&data[s..s + len]);
            s += len;
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = hash4(&data[i..]);
        // Probe the chain for the longest match.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h];
        let mut probes = 0;
        while cand != 0 && probes < params.max_chain {
            let pos = (cand - 1) as usize;
            if i - pos > params.window {
                break;
            }
            // Extend the match.
            let max = data.len() - i;
            let mut l = 0usize;
            while l < max && data[pos + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - pos;
                if l >= max {
                    break;
                }
            }
            cand = prev[pos];
            probes += 1;
        }

        // Insert current position into the chain.
        prev[i] = head[h];
        head[h] = (i + 1) as u32;

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i);
            encode_u64(((best_len as u64) << 1) | 1, &mut out);
            encode_u64(best_dist as u64, &mut out);
            // Insert the skipped positions into chains (bounded to keep
            // compression O(n) on pathological inputs).
            let end = i + best_len;
            let insert_to = end
                .min(i + 64)
                .min(data.len().saturating_sub(MIN_MATCH - 1));
            for j in (i + 1)..insert_to {
                let hj = hash4(&data[j..]);
                prev[j] = head[hj];
                head[hj] = (j + 1) as u32;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, data.len());
    out
}

/// Decompresses a stream produced by [`compress`]/[`compress_with`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let (declared, mut pos) = decode_u64(input).ok_or(CompressError::Truncated)?;
    let mut out: Vec<u8> = Vec::with_capacity(declared as usize);
    while pos < input.len() {
        let (header, used) = decode_u64(&input[pos..]).ok_or(CompressError::Truncated)?;
        pos += used;
        let len = (header >> 1) as usize;
        if header & 1 == 0 {
            // Literal run.
            if pos + len > input.len() {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&input[pos..pos + len]);
            pos += len;
        } else {
            // Match.
            let (dist, used) = decode_u64(&input[pos..]).ok_or(CompressError::Truncated)?;
            pos += used;
            let dist = dist as usize;
            if dist == 0 || dist > out.len() {
                return Err(CompressError::BadDistance);
            }
            let start = out.len() - dist;
            // Overlapping copy: byte-at-a-time semantics.
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() as u64 != declared {
        return Err(CompressError::LengthMismatch {
            declared,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
        c.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), 1);
    }

    #[test]
    fn short_input_stays_literal() {
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(200);
        let c = roundtrip(&data);
        assert!(c < data.len() / 10, "got {} of {}", c, data.len());
    }

    #[test]
    fn run_of_single_byte_uses_overlapping_copy() {
        let data = vec![b'x'; 10_000];
        let c = roundtrip(&data);
        assert!(c < 64, "run should collapse, got {c}");
    }

    #[test]
    fn csv_like_data() {
        let mut data = String::new();
        for i in 0..500 {
            data.push_str(&format!("{i},user{i},2015-05-19,some common suffix\n"));
        }
        let c = roundtrip(data.as_bytes());
        assert!(c < data.len() / 2);
    }

    #[test]
    fn incompressible_data_grows_only_slightly() {
        // xorshift noise
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut data = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push((state >> 32) as u8);
        }
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 64 + 16);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_is_rejected_not_panicking() {
        let c = compress(b"hello hello hello hello hello");
        // Truncate
        assert!(decompress(&c[..c.len() - 1]).is_err());
        // Bad distance: craft match with distance beyond output
        let mut bad = Vec::new();
        crate::varint::encode_u64(4, &mut bad); // declared len
        crate::varint::encode_u64((4 << 1) | 1, &mut bad); // match len 4
        crate::varint::encode_u64(9, &mut bad); // distance 9 > 0 produced
        assert_eq!(decompress(&bad), Err(CompressError::BadDistance));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut bad = Vec::new();
        crate::varint::encode_u64(10, &mut bad); // declare 10
        crate::varint::encode_u64(3 << 1, &mut bad); // 3 literals
        bad.extend_from_slice(b"abc");
        assert!(matches!(
            decompress(&bad),
            Err(CompressError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn params_affect_output_but_not_correctness() {
        let data: Vec<u8> = (0..200u32)
            .flat_map(|i| format!("row {} of the table\n", i % 17).into_bytes())
            .collect();
        let fast = compress_with(
            &data,
            &Params {
                window: 256,
                max_chain: 1,
            },
        );
        let tight = compress_with(&data, &Params::default());
        assert_eq!(decompress(&fast).unwrap(), data);
        assert_eq!(decompress(&tight).unwrap(), data);
        assert!(tight.len() <= fast.len());
    }
}
