#![warn(missing_docs)]

//! Compression substrate: varint coding and an LZ77-style compressor.
//!
//! The paper distinguishes the storage cost `Δ` of a delta from its
//! recreation cost `Φ`, noting the two diverge "especially if the deltas
//! are stored in a compressed fashion" (§2.1). To exercise that regime with
//! real bytes, this crate provides a self-contained LZ77 compressor
//! (hash-chain match finder, greedy parse, varint-coded tokens) with no
//! external dependencies. It is not meant to compete with zstd; it is meant
//! to be an honest, deterministic compressor whose output sizes define `Δ`
//! and whose decompression work contributes to `Φ`.

pub mod lz;
pub mod varint;

pub use lz::{compress, compress_with, decompress, CompressError, Params};
pub use varint::{decode_u64, encode_u64, encoded_len};
