//! Dijkstra's single-source shortest paths with parent tracking.
//!
//! The shortest-path tree rooted at the dummy vertex `V0` over the `Φ`
//! (recreation-cost) weights is the optimal storage graph for the paper's
//! Problem 2 (Lemma 3) and a building block of LMG and LAST.

use crate::digraph::DiGraph;
use crate::heap::IndexedMinHeap;
use crate::ids::NodeId;

/// The result of a shortest-path computation from a single source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    /// Source node the distances are measured from.
    pub source: NodeId,
    /// `dist[v]` = cost of the shortest path `source → v`, or `None` if
    /// `v` is unreachable.
    pub dist: Vec<Option<u64>>,
    /// `parent[v]` = predecessor of `v` on its shortest path, or `None` for
    /// the source and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Whether every node is reachable from the source.
    pub fn all_reachable(&self) -> bool {
        self.dist.iter().all(|d| d.is_some())
    }

    /// The shortest path `source → v` as a node sequence (inclusive), or
    /// `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist[v.index()]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs Dijkstra's algorithm from `source` using `weight(edge) -> u64`.
///
/// Complexity: `O(E log V)` with the indexed binary heap.
///
/// # Panics
/// Debug-asserts that no weight computation underflows (weights must be
/// non-negative by construction of `u64`; saturating addition guards
/// against overflow).
pub fn dijkstra<W>(
    graph: &DiGraph<W>,
    source: NodeId,
    mut weight: impl FnMut(&crate::digraph::Edge<W>) -> u64,
) -> ShortestPaths {
    let n = graph.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = IndexedMinHeap::with_capacity(n);
    let mut settled = vec![false; n];

    dist[source.index()] = Some(0);
    heap.push_or_decrease(source.0, 0u64);

    while let Some((d, u32id)) = heap.pop() {
        let u = NodeId(u32id);
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        for &eid in graph.out_edges(u) {
            let e = graph.edge(eid);
            if settled[e.dst.index()] {
                continue;
            }
            let nd = d.saturating_add(weight(e));
            let better = match dist[e.dst.index()] {
                None => true,
                Some(old) => nd < old,
            };
            if better {
                dist[e.dst.index()] = Some(nd);
                parent[e.dst.index()] = Some(u);
                heap.push_or_decrease(e.dst.0, nd);
            }
        }
    }

    ShortestPaths {
        source,
        dist,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> DiGraph<u64> {
        // 0 -1-> 1 -1-> 2
        // 0 ------3----> 2
        // 3 isolated
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(0), NodeId(2), 3);
        g
    }

    #[test]
    fn picks_shorter_two_hop_path() {
        let sp = dijkstra(&g(), NodeId(0), |e| e.weight);
        assert_eq!(sp.dist[2], Some(2));
        assert_eq!(sp.parent[2], Some(NodeId(1)));
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let sp = dijkstra(&g(), NodeId(0), |e| e.weight);
        assert_eq!(sp.dist[3], None);
        assert!(!sp.all_reachable());
        assert_eq!(sp.path_to(NodeId(3)), None);
    }

    #[test]
    fn path_reconstruction() {
        let sp = dijkstra(&g(), NodeId(0), |e| e.weight);
        assert_eq!(
            sp.path_to(NodeId(2)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
        assert_eq!(sp.path_to(NodeId(0)), Some(vec![NodeId(0)]));
    }

    #[test]
    fn zero_weight_edges() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 0u64);
        g.add_edge(NodeId(1), NodeId(2), 0);
        let sp = dijkstra(&g, NodeId(0), |e| e.weight);
        assert_eq!(sp.dist, vec![Some(0), Some(0), Some(0)]);
    }

    #[test]
    fn parallel_edges_take_minimum() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 9u64);
        g.add_edge(NodeId(0), NodeId(1), 2);
        let sp = dijkstra(&g, NodeId(0), |e| e.weight);
        assert_eq!(sp.dist[1], Some(2));
    }

    #[test]
    fn overflow_saturates_rather_than_wrapping() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), u64::MAX - 1);
        g.add_edge(NodeId(1), NodeId(2), 10);
        let sp = dijkstra(&g, NodeId(0), |e| e.weight);
        assert_eq!(sp.dist[2], Some(u64::MAX));
    }
}
