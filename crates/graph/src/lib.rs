#![warn(missing_docs)]

//! Graph substrate for the dataset-versioning system.
//!
//! This crate provides the graph data structures and classic algorithms the
//! paper's storage/recreation optimization is built on (its §2.2 maps the
//! versioning problem onto spanning trees of a directed, edge-weighted
//! graph):
//!
//! - [`DiGraph`]: a compact directed multigraph with generic edge weights.
//! - [`UnGraph`]: an undirected multigraph (each edge stored once).
//! - [`dijkstra()`]: single-source shortest paths / shortest-path trees
//!   (Problem 2's optimum).
//! - [`prim_mst`] and [`kruskal_mst`]: minimum spanning trees of undirected
//!   graphs (Problem 1's optimum in the undirected case).
//! - [`min_cost_arborescence`]: Edmonds' algorithm for directed graphs
//!   (Problem 1's optimum in the directed case), via cycle contraction.
//! - [`tree`]: rooted-tree utilities (subtree sizes, depths, path costs)
//!   used by the LMG and LAST heuristics.
//! - [`heap`]: an indexed binary min-heap with decrease-key, shared by the
//!   Dijkstra/Prim/Modified-Prim implementations.
//!
//! Everything is implemented from scratch; the crate has no dependencies.

pub mod bellman_ford;
pub mod digraph;
pub mod dijkstra;
pub mod edmonds;
pub mod hashing;
pub mod heap;
pub mod ids;
pub mod kruskal;
pub mod prim;
pub mod traversal;
pub mod tree;
pub mod undirected;
pub mod union_find;

pub use bellman_ford::bellman_ford;
pub use digraph::{DiGraph, Edge, EdgeId};
pub use dijkstra::{dijkstra, ShortestPaths};
pub use edmonds::min_cost_arborescence;
pub use hashing::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use heap::IndexedMinHeap;
pub use ids::NodeId;
pub use kruskal::kruskal_mst;
pub use prim::prim_mst;
pub use tree::RootedTree;
pub use undirected::{UnGraph, UndirectedEdge};
pub use union_find::UnionFind;
