//! An undirected multigraph (each edge stored once).
//!
//! Used for the paper's *undirected case* (§2.1), where the differencing
//! mechanism is symmetric (`Δ_ij = Δ_ji`, e.g. XOR deltas or two-way diffs)
//! and the storage graph is a spanning tree of an undirected graph.

use crate::ids::NodeId;

/// An undirected edge `{a, b}` with its weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UndirectedEdge<W> {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Edge weight.
    pub weight: W,
}

impl<W> UndirectedEdge<W> {
    /// Given one endpoint of this edge, returns the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint.
    #[inline]
    pub fn other(&self, v: NodeId) -> NodeId {
        if v == self.a {
            self.b
        } else {
            assert_eq!(v, self.b, "node is not an endpoint of this edge");
            self.a
        }
    }
}

/// An undirected multigraph over dense node ids `0..n`.
#[derive(Clone, Debug, Default)]
pub struct UnGraph<W> {
    edges: Vec<UndirectedEdge<W>>,
    /// `adj[v]` lists ids of edges incident to `v`.
    adj: Vec<Vec<u32>>,
}

impl<W> UnGraph<W> {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        UnGraph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Adds an undirected edge, returning its dense index.
    ///
    /// Self-loops are rejected: they can never appear in a spanning tree and
    /// admitting them would complicate `other()`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: W) -> u32 {
        assert!(a.index() < self.node_count(), "a out of range");
        assert!(b.index() < self.node_count(), "b out of range");
        assert_ne!(a, b, "self-loops are not allowed in UnGraph");
        let id = self.edges.len() as u32;
        self.edges.push(UndirectedEdge { a, b, weight });
        self.adj[a.index()].push(id);
        self.adj[b.index()].push(id);
        id
    }

    /// The edge with the given index.
    #[inline]
    pub fn edge(&self, id: u32) -> &UndirectedEdge<W> {
        &self.edges[id as usize]
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[UndirectedEdge<W>] {
        &self.edges
    }

    /// Ids of edges incident to `v`.
    #[inline]
    pub fn incident_edges(&self, v: NodeId) -> &[u32] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Neighbors of `v` (with multiplicity).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.index()]
            .iter()
            .map(move |&e| self.edges[e as usize].other(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> UnGraph<u64> {
        let mut g = UnGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 2);
        g.add_edge(NodeId(2), NodeId(0), 3);
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn other_endpoint() {
        let g = triangle();
        let e = g.edge(0);
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        let g = triangle();
        g.edge(0).other(NodeId(2));
    }

    #[test]
    fn neighbors_symmetric() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert!(n0.contains(&NodeId(1)) && n0.contains(&NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut g: UnGraph<u64> = UnGraph::new(2);
        g.add_edge(NodeId(1), NodeId(1), 1);
    }
}
