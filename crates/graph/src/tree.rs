//! Rooted-tree utilities over parent arrays.
//!
//! Storage graphs in this system are spanning trees rooted at the dummy
//! vertex `V0` (the paper's Lemma 1); every solver ultimately produces a
//! parent array. `RootedTree` validates such arrays and provides the
//! aggregate queries the heuristics need: preorder traversal, subtree
//! sizes/masses (LMG's `ρ` numerator), depths and path costs.

use crate::ids::NodeId;

/// Errors from [`RootedTree::from_parents`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The root's parent entry was not `None`.
    RootHasParent,
    /// A non-root node has no parent.
    MissingParent(NodeId),
    /// A parent index is out of range.
    ParentOutOfRange(NodeId),
    /// Following parents from this node never reaches the root.
    Cycle(NodeId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::RootHasParent => write!(f, "root must not have a parent"),
            TreeError::MissingParent(v) => write!(f, "node {v} has no parent"),
            TreeError::ParentOutOfRange(v) => write!(f, "node {v} has out-of-range parent"),
            TreeError::Cycle(v) => write!(f, "node {v} is on a cycle"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A validated rooted tree over dense node ids.
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl RootedTree {
    /// Builds and validates a tree from a parent array.
    pub fn from_parents(root: NodeId, parent: Vec<Option<NodeId>>) -> Result<Self, TreeError> {
        let n = parent.len();
        if parent[root.index()].is_some() {
            return Err(TreeError::RootHasParent);
        }
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, p) in parent.iter().enumerate() {
            match p {
                None if v == root.index() => {}
                None => return Err(TreeError::MissingParent(NodeId::new(v))),
                Some(p) => {
                    if p.index() >= n {
                        return Err(TreeError::ParentOutOfRange(NodeId::new(v)));
                    }
                    children[p.index()].push(NodeId::new(v));
                }
            }
        }
        let tree = RootedTree {
            root,
            parent,
            children,
        };
        // Reachability check: preorder must visit every node exactly once.
        if tree.preorder().len() != n {
            // Find a witness node not reached.
            let mut reached = vec![false; n];
            for v in tree.preorder() {
                reached[v.index()] = true;
            }
            let bad = reached.iter().position(|r| !r).unwrap();
            return Err(TreeError::Cycle(NodeId::new(bad)));
        }
        Ok(tree)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty (never true for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The full parent array.
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Nodes in preorder (root first), computed iteratively.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            order.push(v);
            stack.extend(self.children[v.index()].iter().copied());
        }
        order
    }

    /// `sizes[v]` = number of nodes in `v`'s subtree (including `v`).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let order = self.preorder();
        let mut sizes = vec![1u32; self.len()];
        for &v in order.iter().rev() {
            if let Some(p) = self.parent[v.index()] {
                sizes[p.index()] += sizes[v.index()];
            }
        }
        sizes
    }

    /// `sums[v]` = sum of `values` over `v`'s subtree. Used by the
    /// workload-aware LMG, where `values` are access frequencies.
    pub fn subtree_sums(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.len());
        let order = self.preorder();
        let mut sums = values.to_vec();
        for &v in order.iter().rev() {
            if let Some(p) = self.parent[v.index()] {
                sums[p.index()] += sums[v.index()];
            }
        }
        sums
    }

    /// `depth[v]` = number of edges on the root→`v` path.
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.len()];
        for v in self.preorder() {
            if let Some(p) = self.parent[v.index()] {
                depth[v.index()] = depth[p.index()] + 1;
            }
        }
        depth
    }

    /// `cost[v]` = sum of `edge_cost(parent, child)` along the root→`v`
    /// path. This is exactly the recreation cost of `v` when the tree is a
    /// storage graph and `edge_cost` returns `Φ`.
    pub fn path_costs(&self, mut edge_cost: impl FnMut(NodeId, NodeId) -> u64) -> Vec<u64> {
        let mut cost = vec![0u64; self.len()];
        for v in self.preorder() {
            if let Some(p) = self.parent[v.index()] {
                cost[v.index()] = cost[p.index()].saturating_add(edge_cost(p, v));
            }
        }
        cost
    }

    /// All nodes in `v`'s subtree (including `v`), in preorder.
    pub fn descendants(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(self.children[x.index()].iter().copied());
        }
        out
    }

    /// The path `v → root` (inclusive of both).
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caterpillar() -> RootedTree {
        // 0 -> 1 -> 2 -> 3, with 4 hanging off 1 and 5 off 2
        let parent = vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(2)),
            Some(NodeId(1)),
            Some(NodeId(2)),
        ];
        RootedTree::from_parents(NodeId(0), parent).unwrap()
    }

    #[test]
    fn preorder_visits_all_once() {
        let t = caterpillar();
        let mut order = t.preorder();
        assert_eq!(order.len(), 6);
        order.sort();
        order.dedup();
        assert_eq!(order.len(), 6);
        assert_eq!(t.preorder()[0], NodeId(0));
    }

    #[test]
    fn subtree_sizes_match_hand_count() {
        let t = caterpillar();
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 6);
        assert_eq!(sizes[1], 5);
        assert_eq!(sizes[2], 3);
        assert_eq!(sizes[3], 1);
        assert_eq!(sizes[4], 1);
        assert_eq!(sizes[5], 1);
    }

    #[test]
    fn subtree_sums_weighted() {
        let t = caterpillar();
        let vals = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let sums = t.subtree_sums(&vals);
        assert_eq!(sums[2], 4.0 + 8.0 + 32.0);
        assert_eq!(sums[0], vals.iter().sum::<f64>());
    }

    #[test]
    fn depths_and_path_costs() {
        let t = caterpillar();
        assert_eq!(t.depths(), vec![0, 1, 2, 3, 2, 3]);
        // uniform edge cost of 10
        let costs = t.path_costs(|_, _| 10);
        assert_eq!(costs, vec![0, 10, 20, 30, 20, 30]);
    }

    #[test]
    fn descendants_of_internal_node() {
        let t = caterpillar();
        let mut d = t.descendants(NodeId(2));
        d.sort();
        assert_eq!(d, vec![NodeId(2), NodeId(3), NodeId(5)]);
    }

    #[test]
    fn path_to_root_walks_parents() {
        let t = caterpillar();
        assert_eq!(
            t.path_to_root(NodeId(3)),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn rejects_cycle() {
        let parent = vec![None, Some(NodeId(2)), Some(NodeId(1))];
        let err = RootedTree::from_parents(NodeId(0), parent).unwrap_err();
        assert!(matches!(err, TreeError::Cycle(_)));
    }

    #[test]
    fn rejects_missing_parent() {
        let parent = vec![None, None];
        let err = RootedTree::from_parents(NodeId(0), parent).unwrap_err();
        assert_eq!(err, TreeError::MissingParent(NodeId(1)));
    }

    #[test]
    fn rejects_root_with_parent() {
        let parent = vec![Some(NodeId(1)), None];
        let err = RootedTree::from_parents(NodeId(0), parent).unwrap_err();
        assert_eq!(err, TreeError::RootHasParent);
    }

    #[test]
    fn single_node_tree() {
        let t = RootedTree::from_parents(NodeId(0), vec![None]).unwrap();
        assert_eq!(t.subtree_sizes(), vec![1]);
        assert_eq!(t.depths(), vec![0]);
    }
}
