//! Kruskal's minimum spanning tree algorithm.
//!
//! Provides an independent MST implementation used to cross-check Prim's
//! in tests and preferred when the edge set is already materialized as a
//! flat list (e.g. all revealed undirected deltas).

use crate::ids::NodeId;
use crate::undirected::UnGraph;
use crate::union_find::UnionFind;

/// The edges (by index into the source graph) of a minimum spanning tree,
/// plus its total weight. Returns `None` from [`kruskal_mst`] if the graph
/// is disconnected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KruskalResult {
    /// Indices of chosen edges.
    pub edges: Vec<u32>,
    /// Sum of chosen edge weights.
    pub total_weight: u64,
}

/// Computes a minimum spanning tree with Kruskal's algorithm.
///
/// Complexity: `O(E log E)`.
pub fn kruskal_mst<W>(
    graph: &UnGraph<W>,
    mut weight: impl FnMut(&crate::undirected::UndirectedEdge<W>) -> u64,
) -> Option<KruskalResult> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let mut order: Vec<(u64, u32)> = (0..graph.edge_count() as u32)
        .map(|i| (weight(graph.edge(i)), i))
        .collect();
    order.sort_unstable();

    let mut uf = UnionFind::new(n);
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    let mut total = 0u64;
    for (w, i) in order {
        let e = graph.edge(i);
        if uf.union(e.a.0, e.b.0) {
            chosen.push(i);
            total += w;
            if chosen.len() == n - 1 {
                break;
            }
        }
    }
    (chosen.len() == n - 1).then_some(KruskalResult {
        edges: chosen,
        total_weight: total,
    })
}

/// Converts a Kruskal edge set into a parent array rooted at `root`.
///
/// Returns `parent[v]` (`None` for the root) and `parent_edge[v]`.
pub fn root_tree<W>(
    graph: &UnGraph<W>,
    tree_edges: &[u32],
    root: NodeId,
) -> (Vec<Option<NodeId>>, Vec<Option<u32>>) {
    let n = graph.node_count();
    // Adjacency restricted to tree edges.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &ei in tree_edges {
        let e = graph.edge(ei);
        adj[e.a.index()].push(ei);
        adj[e.b.index()].push(ei);
    }
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut visited = vec![false; n];
    let mut stack = vec![root];
    visited[root.index()] = true;
    while let Some(v) = stack.pop() {
        for &ei in &adj[v.index()] {
            let u = graph.edge(ei).other(v);
            if !visited[u.index()] {
                visited[u.index()] = true;
                parent[u.index()] = Some(v);
                parent_edge[u.index()] = Some(ei);
                stack.push(u);
            }
        }
    }
    (parent, parent_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::prim_mst;

    fn wheel() -> UnGraph<u64> {
        let mut g = UnGraph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 10);
        g.add_edge(NodeId(0), NodeId(2), 1);
        g.add_edge(NodeId(0), NodeId(3), 8);
        g.add_edge(NodeId(0), NodeId(4), 2);
        g.add_edge(NodeId(1), NodeId(2), 3);
        g.add_edge(NodeId(2), NodeId(3), 4);
        g.add_edge(NodeId(3), NodeId(4), 5);
        g.add_edge(NodeId(4), NodeId(1), 6);
        g
    }

    #[test]
    fn agrees_with_prim() {
        let g = wheel();
        let k = kruskal_mst(&g, |e| e.weight).unwrap();
        let p = prim_mst(&g, NodeId(0), |e| e.weight).unwrap();
        assert_eq!(k.total_weight, p.total_weight);
    }

    #[test]
    fn tree_has_n_minus_1_edges() {
        let g = wheel();
        let k = kruskal_mst(&g, |e| e.weight).unwrap();
        assert_eq!(k.edges.len(), 4);
    }

    #[test]
    fn disconnected_is_none() {
        let mut g: UnGraph<u64> = UnGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        assert!(kruskal_mst(&g, |e| e.weight).is_none());
    }

    #[test]
    fn root_tree_produces_valid_parents() {
        let g = wheel();
        let k = kruskal_mst(&g, |e| e.weight).unwrap();
        let (parent, parent_edge) = root_tree(&g, &k.edges, NodeId(3));
        assert_eq!(parent[3], None);
        assert_eq!(parent_edge[3], None);
        let mut reached = 0;
        for v in 0..5u32 {
            let mut cur = NodeId(v);
            let mut hops = 0;
            while let Some(p) = parent[cur.index()] {
                cur = p;
                hops += 1;
                assert!(hops <= 5);
            }
            if cur == NodeId(3) {
                reached += 1;
            }
        }
        assert_eq!(reached, 5);
    }

    #[test]
    fn empty_graph_is_none() {
        let g: UnGraph<u64> = UnGraph::new(0);
        assert!(kruskal_mst(&g, |e| e.weight).is_none());
    }
}
