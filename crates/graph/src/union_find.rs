//! Disjoint-set forest (union–find) with path halving and union by rank.
//!
//! Used by Kruskal's MST and by cycle detection helpers in the workload
//! generators.

/// A union–find structure over `0..n` dense elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn union_same_set_is_noop() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }
}
