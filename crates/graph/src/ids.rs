//! Strongly-typed node identifiers.
//!
//! Nodes are dense `u32` indices. Versions are numbered `1..=n` in the
//! paper's augmented graph, with `0` reserved for the dummy root `V0`; this
//! module does not enforce that convention, it only provides the newtype.

use std::fmt;

/// A node in a graph, represented as a dense index.
///
/// `NodeId` is a lightweight copyable handle; it is only meaningful relative
/// to the graph that produced it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position, usable as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn display_and_debug() {
        let n = NodeId(7);
        assert_eq!(format!("{n}"), "7");
        assert_eq!(format!("{n:?}"), "N7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }
}
