//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The sparse Δ/Φ matrices key on `(u32, u32)` version pairs, and the
//! default SipHash hasher is measurably slow for such small keys. This is
//! the FxHash algorithm used by rustc (multiply-and-rotate), implemented
//! locally so the workspace stays dependency-free.
//!
//! Not HashDoS-resistant; do not use for untrusted keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn map_basic_usage() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), u64::from(i) * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(10, 11)), Some(&30));
        assert_eq!(m.get(&(11, 10)), None);
    }

    #[test]
    fn byte_tail_handling() {
        // Writes that are not multiples of 8 bytes must still hash all bytes.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[1u8; 9]), hash_of(&[1u8; 10]));
    }
}
