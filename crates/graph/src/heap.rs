//! An indexed binary min-heap with `decrease-key`.
//!
//! Dijkstra, Prim and the paper's Modified Prim's algorithm (§4.2) all need
//! a priority queue whose entries can be re-prioritized in place. The heap
//! is indexed by dense node ids, so `decrease_key` is O(log n) with no
//! auxiliary map lookups.

/// A binary min-heap over at most `capacity` dense keys (`0..capacity`),
/// each with a priority of type `P`.
///
/// Each key may be present at most once; pushing a present key with a lower
/// priority behaves as a decrease-key, with a higher priority it is ignored
/// (matching the "relax" usage in shortest-path algorithms).
#[derive(Debug, Clone)]
pub struct IndexedMinHeap<P: Ord + Copy> {
    /// Heap array of (priority, key).
    heap: Vec<(P, u32)>,
    /// `pos[key]` = index in `heap`, or `NOT_PRESENT`.
    pos: Vec<u32>,
}

const NOT_PRESENT: u32 = u32::MAX;

impl<P: Ord + Copy> IndexedMinHeap<P> {
    /// Creates an empty heap able to hold keys `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexedMinHeap {
            heap: Vec::with_capacity(capacity),
            pos: vec![NOT_PRESENT; capacity],
        }
    }

    /// Number of entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `key` is currently queued.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.pos[key as usize] != NOT_PRESENT
    }

    /// Current priority of `key`, if queued.
    pub fn priority(&self, key: u32) -> Option<P> {
        let p = self.pos[key as usize];
        (p != NOT_PRESENT).then(|| self.heap[p as usize].0)
    }

    /// Inserts `key` with `priority`, or lowers its priority if it is
    /// already queued with a higher one. Returns `true` if the heap changed.
    pub fn push_or_decrease(&mut self, key: u32, priority: P) -> bool {
        let p = self.pos[key as usize];
        if p == NOT_PRESENT {
            self.heap.push((priority, key));
            self.pos[key as usize] = (self.heap.len() - 1) as u32;
            self.sift_up(self.heap.len() - 1);
            true
        } else if priority < self.heap[p as usize].0 {
            self.heap[p as usize].0 = priority;
            self.sift_up(p as usize);
            true
        } else {
            false
        }
    }

    /// Removes and returns the minimum `(priority, key)` entry.
    pub fn pop(&mut self) -> Option<(P, u32)> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap.swap_remove(0);
        self.pos[top.1 as usize] = NOT_PRESENT;
        if !self.heap.is_empty() {
            self.pos[self.heap[0].1 as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 < self.heap[parent].0 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l].0 < self.heap[smallest].0 {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].0 < self.heap[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1 as usize] = a as u32;
        self.pos[self.heap[b].1 as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = IndexedMinHeap::with_capacity(10);
        for (k, p) in [(3u32, 30u64), (1, 10), (4, 40), (2, 20), (0, 0)] {
            assert!(h.push_or_decrease(k, p));
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedMinHeap::with_capacity(4);
        h.push_or_decrease(0, 100u64);
        h.push_or_decrease(1, 50);
        h.push_or_decrease(2, 75);
        assert!(h.push_or_decrease(0, 1)); // decrease 0 below everything
        assert_eq!(h.pop(), Some((1, 0)));
        assert_eq!(h.pop(), Some((50, 1)));
    }

    #[test]
    fn increase_is_ignored() {
        let mut h = IndexedMinHeap::with_capacity(2);
        h.push_or_decrease(0, 5u64);
        assert!(!h.push_or_decrease(0, 10));
        assert_eq!(h.priority(0), Some(5));
    }

    #[test]
    fn contains_tracks_membership() {
        let mut h = IndexedMinHeap::with_capacity(3);
        assert!(!h.contains(1));
        h.push_or_decrease(1, 1u64);
        assert!(h.contains(1));
        h.pop();
        assert!(!h.contains(1));
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_operations_match_reference() {
        // Compare against a simple sorted-vec reference implementation.
        let mut h = IndexedMinHeap::with_capacity(64);
        let mut reference: Vec<(u64, u32)> = Vec::new();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let op = next() % 3;
            if op < 2 {
                let key = (next() % 64) as u32;
                let pri = next() % 1000;
                let existing = reference.iter().position(|&(_, k)| k == key);
                match existing {
                    None => {
                        reference.push((pri, key));
                        assert!(h.push_or_decrease(key, pri));
                    }
                    Some(i) if pri < reference[i].0 => {
                        reference[i].0 = pri;
                        assert!(h.push_or_decrease(key, pri));
                    }
                    Some(_) => {
                        assert!(!h.push_or_decrease(key, pri));
                    }
                }
            } else if !reference.is_empty() {
                reference.sort_unstable();
                let (pri, _key) = reference.remove(0);
                // Several keys may share a priority; only priority must match.
                let (got_pri, got_key) = h.pop().unwrap();
                assert_eq!(got_pri, pri);
                // Remove the popped key from the reference if it differs.
                if let Some(j) = reference
                    .iter()
                    .position(|&(p, k)| k == got_key && p == pri)
                {
                    reference.remove(j);
                    reference.push((pri, _key));
                }
            }
        }
        assert_eq!(h.len(), reference.len());
    }
}
