//! Prim's minimum spanning tree algorithm for undirected graphs.
//!
//! Over the symmetric `Δ` weights this yields the minimum-storage solution
//! of the paper's Problem 1 in the undirected case (Lemma 2). The returned
//! structure is rooted at the start node so it can serve directly as a
//! storage graph and as the starting tree of LMG/LAST.

use crate::heap::IndexedMinHeap;
use crate::ids::NodeId;
use crate::undirected::UnGraph;

/// A rooted minimum spanning tree: `parent[v]` is `v`'s parent edge's other
/// endpoint, `parent_edge[v]` the chosen edge index.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// The root node the tree was grown from.
    pub root: NodeId,
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Edge index (into the source graph) connecting each node to its
    /// parent (`None` for the root).
    pub parent_edge: Vec<Option<u32>>,
    /// Total weight of the tree.
    pub total_weight: u64,
}

/// Computes a minimum spanning tree of `graph` rooted at `root` using
/// Prim's algorithm with an indexed heap. Returns `None` if the graph is
/// not connected (no spanning tree exists).
///
/// Complexity: `O(E log V)`.
pub fn prim_mst<W>(
    graph: &UnGraph<W>,
    root: NodeId,
    mut weight: impl FnMut(&crate::undirected::UndirectedEdge<W>) -> u64,
) -> Option<MstResult> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let mut in_tree = vec![false; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut parent_edge: Vec<Option<u32>> = vec![None; n];
    let mut best: Vec<u64> = vec![u64::MAX; n];
    let mut heap = IndexedMinHeap::with_capacity(n);
    let mut total = 0u64;
    let mut added = 0usize;

    best[root.index()] = 0;
    heap.push_or_decrease(root.0, 0u64);

    while let Some((w, vid)) = heap.pop() {
        let v = NodeId(vid);
        if in_tree[v.index()] {
            continue;
        }
        in_tree[v.index()] = true;
        total += w;
        added += 1;
        for &eid in graph.incident_edges(v) {
            let e = graph.edge(eid);
            let u = e.other(v);
            if in_tree[u.index()] {
                continue;
            }
            let ew = weight(e);
            if ew < best[u.index()] {
                best[u.index()] = ew;
                parent[u.index()] = Some(v);
                parent_edge[u.index()] = Some(eid);
                heap.push_or_decrease(u.0, ew);
            }
        }
    }

    (added == n).then_some(MstResult {
        root,
        parent,
        parent_edge,
        total_weight: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> UnGraph<u64> {
        // 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4), 0-2 (5)
        let mut g = UnGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 2);
        g.add_edge(NodeId(2), NodeId(3), 3);
        g.add_edge(NodeId(3), NodeId(0), 4);
        g.add_edge(NodeId(0), NodeId(2), 5);
        g
    }

    #[test]
    fn finds_minimum_weight() {
        let mst = prim_mst(&square_with_diagonal(), NodeId(0), |e| e.weight).unwrap();
        assert_eq!(mst.total_weight, 1 + 2 + 3);
    }

    #[test]
    fn parents_form_tree_rooted_at_root() {
        let mst = prim_mst(&square_with_diagonal(), NodeId(0), |e| e.weight).unwrap();
        assert_eq!(mst.parent[0], None);
        // Every non-root node reaches the root by following parents.
        for v in 1..4u32 {
            let mut cur = NodeId(v);
            let mut hops = 0;
            while let Some(p) = mst.parent[cur.index()] {
                cur = p;
                hops += 1;
                assert!(hops <= 4, "parent chain contains a cycle");
            }
            assert_eq!(cur, NodeId(0));
        }
    }

    #[test]
    fn disconnected_graph_returns_none() {
        let mut g: UnGraph<u64> = UnGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        assert!(prim_mst(&g, NodeId(0), |e| e.weight).is_none());
    }

    #[test]
    fn single_node() {
        let g: UnGraph<u64> = UnGraph::new(1);
        let mst = prim_mst(&g, NodeId(0), |e| e.weight).unwrap();
        assert_eq!(mst.total_weight, 0);
        assert_eq!(mst.parent, vec![None]);
    }

    #[test]
    fn root_choice_does_not_change_weight() {
        let g = square_with_diagonal();
        let w0 = prim_mst(&g, NodeId(0), |e| e.weight).unwrap().total_weight;
        let w2 = prim_mst(&g, NodeId(2), |e| e.weight).unwrap().total_weight;
        assert_eq!(w0, w2);
    }
}
