//! Graph traversals: BFS orders (optionally bounded) and topological sort.
//!
//! The paper's running-time experiment (Fig. 17) samples sub-version-graphs
//! by breadth-first traversal from a random node until `n` versions are
//! collected; [`bfs_limited`] implements exactly that. [`topo_sort`] is
//! used to validate that generated version graphs are DAGs.

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Nodes reachable from `start` in breadth-first order.
pub fn bfs_order<W>(graph: &DiGraph<W>, start: NodeId) -> Vec<NodeId> {
    bfs_limited(graph, start, usize::MAX)
}

/// Breadth-first order from `start`, stopping once `limit` nodes have been
/// collected (the paper's subgraph sampling for scaling experiments).
pub fn bfs_limited<W>(graph: &DiGraph<W>, start: NodeId, limit: usize) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        if order.len() >= limit {
            break;
        }
        for u in graph.successors(v) {
            if !visited[u.index()] {
                visited[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// BFS ignoring edge direction (treats the digraph as undirected); useful
/// for sampling connected sub-version-graphs that include merge parents.
pub fn bfs_undirected_limited<W>(graph: &DiGraph<W>, start: NodeId, limit: usize) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        if order.len() >= limit {
            break;
        }
        for u in graph.successors(v).chain(graph.predecessors(v)) {
            if !visited[u.index()] {
                visited[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Kahn's topological sort. Returns `None` if the graph has a cycle.
pub fn topo_sort<W>(graph: &DiGraph<W>) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| graph.in_degree(NodeId(v as u32))).collect();
    let mut queue: VecDeque<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in graph.successors(v) {
            indeg[u.index()] -= 1;
            if indeg[u.index()] == 0 {
                queue.push_back(u);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<u64> {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(2), 1);
        g.add_edge(NodeId(1), NodeId(3), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        g
    }

    #[test]
    fn bfs_visits_levels_in_order() {
        let order = bfs_order(&diamond(), NodeId(0));
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[3], NodeId(3));
    }

    #[test]
    fn bfs_limit_truncates() {
        let order = bfs_limited(&diamond(), NodeId(0), 2);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn bfs_undirected_crosses_reverse_edges() {
        let g = diamond();
        let fwd = bfs_order(&g, NodeId(3));
        assert_eq!(fwd.len(), 1); // 3 has no out-edges
        let und = bfs_undirected_limited(&g, NodeId(3), usize::MAX);
        assert_eq!(und.len(), 4);
    }

    #[test]
    fn topo_sort_of_dag() {
        let order = topo_sort(&diamond()).unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|v| order.iter().position(|&x| x == NodeId(v)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn topo_sort_detects_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1u64);
        g.add_edge(NodeId(1), NodeId(0), 1);
        assert!(topo_sort(&g).is_none());
    }

    #[test]
    fn topo_sort_empty_graph() {
        let g: DiGraph<u64> = DiGraph::new(0);
        assert_eq!(topo_sort(&g), Some(vec![]));
    }
}
