//! A compact directed multigraph with generic edge weights.
//!
//! Edges are stored in one arena (`Vec<Edge<W>>`) with per-node out- and
//! in-adjacency lists of edge indices. This is the representation used for
//! the paper's augmented graph `G` (§2.2): node `0` is the dummy root `V0`,
//! an edge `V0 → Vi` means "materialize `Vi`" and an edge `Vi → Vj` means
//! "store `Vj` as a delta from `Vi`".

use crate::ids::NodeId;

/// A dense edge identifier (index into the edge arena).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's position, usable as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed edge with its weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge<W> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge weight (e.g. a `⟨Δ, Φ⟩` pair).
    pub weight: W,
}

/// A directed multigraph over dense node ids `0..n`.
#[derive(Clone, Debug, Default)]
pub struct DiGraph<W> {
    edges: Vec<Edge<W>>,
    out: Vec<Vec<EdgeId>>,
    incoming: Vec<Vec<EdgeId>>,
}

impl<W> DiGraph<W> {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            incoming: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` nodes, reserving room for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut g = Self::new(n);
        g.edges.reserve(m);
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Adds a directed edge and returns its id. Parallel edges and
    /// self-loops are permitted (self-loops are ignored by the spanning
    /// algorithms).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: W) -> EdgeId {
        assert!(src.index() < self.node_count(), "src out of range");
        assert!(dst.index() < self.node_count(), "dst out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, weight });
        self.out[src.index()].push(id);
        self.incoming[dst.index()].push(id);
        id
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge<W> {
        &self.edges[id.index()]
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge<W>] {
        &self.edges
    }

    /// Ids of edges leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out[v.index()]
    }

    /// Ids of edges entering `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.incoming[v.index()]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.incoming[v.index()].len()
    }

    /// Successor nodes of `v` (with multiplicity, in insertion order).
    pub fn successors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[v.index()]
            .iter()
            .map(|e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes of `v` (with multiplicity, in insertion order).
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.incoming[v.index()]
            .iter()
            .map(|e| self.edges[e.index()].src)
    }

    /// Maps edge weights, preserving structure.
    pub fn map_weights<W2>(&self, mut f: impl FnMut(&Edge<W>) -> W2) -> DiGraph<W2> {
        DiGraph {
            edges: self
                .edges
                .iter()
                .map(|e| Edge {
                    src: e.src,
                    dst: e.dst,
                    weight: f(e),
                })
                .collect(),
            out: self.out.clone(),
            incoming: self.incoming.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<u64> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(2), 2);
        g.add_edge(NodeId(1), NodeId(3), 3);
        g.add_edge(NodeId(2), NodeId(3), 4);
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn adjacency_is_consistent_with_edges() {
        let g = diamond();
        for v in g.nodes() {
            for &e in g.out_edges(v) {
                assert_eq!(g.edge(e).src, v);
            }
            for &e in g.in_edges(v) {
                assert_eq!(g.edge(e).dst, v);
            }
        }
    }

    #[test]
    fn successors_and_predecessors() {
        let g = diamond();
        let succ: Vec<_> = g.successors(NodeId(0)).collect();
        assert_eq!(succ, vec![NodeId(1), NodeId(2)]);
        let pred: Vec<_> = g.predecessors(NodeId(3)).collect();
        assert_eq!(pred, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 5u64);
        g.add_edge(NodeId(0), NodeId(1), 7);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
    }

    #[test]
    fn map_weights_preserves_structure() {
        let g = diamond();
        let g2 = g.map_weights(|e| e.weight * 10);
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.edge(EdgeId(2)).weight, 30);
        assert_eq!(g2.edge(EdgeId(2)).src, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "dst out of range")]
    fn add_edge_bounds_checked() {
        let mut g = DiGraph::new(1);
        g.add_edge(NodeId(0), NodeId(1), 0u64);
    }
}
