//! Bellman–Ford shortest paths.
//!
//! Kept deliberately simple: it serves as the reference oracle against which
//! [`crate::dijkstra()`] is property-tested, and handles graphs where edge
//! relaxation order matters. All weights are non-negative in this system, so
//! negative-cycle detection is not needed, but a relaxation-count guard is
//! retained as a defensive invariant.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

/// Runs Bellman–Ford from `source`; returns `dist[v]` (`None` =
/// unreachable).
///
/// Complexity: `O(V · E)`.
pub fn bellman_ford<W>(
    graph: &DiGraph<W>,
    source: NodeId,
    mut weight: impl FnMut(&crate::digraph::Edge<W>) -> u64,
) -> Vec<Option<u64>> {
    let n = graph.node_count();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    dist[source.index()] = Some(0);
    // At most n-1 rounds of relaxation are ever useful.
    for _round in 1..n.max(2) {
        let mut changed = false;
        for e in graph.edges() {
            if let Some(du) = dist[e.src.index()] {
                let nd = du.saturating_add(weight(e));
                let better = match dist[e.dst.index()] {
                    None => true,
                    Some(old) => nd < old,
                };
                if better {
                    dist[e.dst.index()] = Some(nd);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computed_distances() {
        let mut g = DiGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 5u64);
        g.add_edge(NodeId(0), NodeId(2), 2);
        g.add_edge(NodeId(2), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(3), 1);
        let d = bellman_ford(&g, NodeId(0), |e| e.weight);
        assert_eq!(d, vec![Some(0), Some(3), Some(2), Some(4)]);
    }

    #[test]
    fn single_node_graph() {
        let g: DiGraph<u64> = DiGraph::new(1);
        let d = bellman_ford(&g, NodeId(0), |e| e.weight);
        assert_eq!(d, vec![Some(0)]);
    }

    #[test]
    fn disconnected_nodes_stay_none() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1u64);
        let d = bellman_ford(&g, NodeId(0), |e| e.weight);
        assert_eq!(d[2], None);
    }
}
