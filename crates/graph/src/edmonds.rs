//! Edmonds' minimum-cost arborescence (optimum branching) algorithm.
//!
//! In the paper's *directed case*, the minimum-storage solution (Problem 1)
//! is the minimum-cost arborescence of the augmented graph rooted at the
//! dummy vertex `V0` — the directed analogue of the MST (the paper calls
//! this the MCA, computed with Edmonds'/Chu-Liu's algorithm, its ref. 38).
//!
//! The implementation is the classic cycle-contraction scheme, written
//! iteratively (an explicit level stack instead of recursion, so deep
//! contraction chains cannot overflow the call stack) and reconstructing
//! the chosen edge set, not just the total weight:
//!
//! 1. for every non-root node pick the cheapest incoming edge;
//! 2. if those choices are acyclic they form the optimum — done;
//! 3. otherwise contract every cycle into a supernode, reweighting edges
//!    that enter a cycle by the cost of the cycle edge they displace, and
//!    repeat on the contracted graph;
//! 4. unwind: each supernode's chosen entering edge determines which cycle
//!    edge is dropped.
//!
//! Complexity: `O(E·V)` worst case (each contraction level scans all edges,
//! and each level removes at least one node).

use crate::digraph::{DiGraph, EdgeId};
use crate::ids::NodeId;

/// A minimum-cost arborescence rooted at `root`.
#[derive(Debug, Clone)]
pub struct Arborescence {
    /// The root node.
    pub root: NodeId,
    /// `parent[v]` = the source of `v`'s chosen in-edge (`None` for root).
    pub parent: Vec<Option<NodeId>>,
    /// `parent_edge[v]` = the chosen in-edge of `v` (`None` for root).
    pub parent_edge: Vec<Option<EdgeId>>,
    /// Total weight of all chosen edges.
    pub total_weight: u64,
}

const NONE: u32 = u32::MAX;

/// One edge at some contraction level. `parent` is the index of the edge
/// this one was derived from at the level below (at level 0: the original
/// [`EdgeId`] index).
#[derive(Clone, Copy)]
struct LvlEdge {
    u: u32,
    v: u32,
    w: u64,
    parent: u32,
}

/// Bookkeeping for one contracted level, kept for the unwind phase.
struct LevelRecord {
    n: usize,
    root: u32,
    edges: Vec<LvlEdge>,
    /// Cheapest in-edge per node at this level (index into `edges`).
    best: Vec<u32>,
}

/// Computes the minimum-cost arborescence of `graph` rooted at `root`,
/// using `weight` to extract `u64` edge costs. Returns `None` if some node
/// is unreachable from `root`.
pub fn min_cost_arborescence<W>(
    graph: &DiGraph<W>,
    root: NodeId,
    mut weight: impl FnMut(&crate::digraph::Edge<W>) -> u64,
) -> Option<Arborescence> {
    let n0 = graph.node_count();
    if n0 == 0 {
        return None;
    }
    if n0 == 1 {
        return Some(Arborescence {
            root,
            parent: vec![None],
            parent_edge: vec![None],
            total_weight: 0,
        });
    }

    let mut cur_edges: Vec<LvlEdge> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| LvlEdge {
            u: e.src.0,
            v: e.dst.0,
            w: weight(e),
            parent: i as u32,
        })
        .collect();
    let mut cur_n = n0;
    let mut cur_root = root.0;
    let mut levels: Vec<LevelRecord> = Vec::new();

    // Descend: contract cycles until the cheapest in-edges are acyclic.
    let final_chosen: Vec<u32> = loop {
        // 1. Cheapest in-edge per node.
        let mut best = vec![NONE; cur_n];
        for (i, e) in cur_edges.iter().enumerate() {
            if e.v == cur_root || e.u == e.v {
                continue;
            }
            if best[e.v as usize] == NONE || e.w < cur_edges[best[e.v as usize] as usize].w {
                best[e.v as usize] = i as u32;
            }
        }
        if (0..cur_n).any(|v| v as u32 != cur_root && best[v] == NONE) {
            return None; // some node has no incoming edge: unreachable
        }

        // 2. Find cycles in the best-in functional graph.
        let mut comp = vec![NONE; cur_n];
        let mut in_cycle = vec![false; cur_n];
        let mut stamp = vec![NONE; cur_n];
        let mut done = vec![false; cur_n];
        done[cur_root as usize] = true;
        let mut n_comp = 0u32;
        let mut found_cycle = false;
        let mut path: Vec<u32> = Vec::new();
        for start in 0..cur_n as u32 {
            if done[start as usize] {
                continue;
            }
            path.clear();
            let mut v = start;
            while !done[v as usize] && stamp[v as usize] != start {
                stamp[v as usize] = start;
                path.push(v);
                v = cur_edges[best[v as usize] as usize].u;
            }
            if !done[v as usize] {
                // `v` was revisited within this walk: the suffix of `path`
                // starting at `v` is a cycle.
                found_cycle = true;
                let cycle_start = path.iter().position(|&x| x == v).expect("v is on path");
                for &x in &path[cycle_start..] {
                    comp[x as usize] = n_comp;
                    in_cycle[x as usize] = true;
                }
                n_comp += 1;
            }
            for &x in &path {
                done[x as usize] = true;
            }
        }

        if !found_cycle {
            break best;
        }

        // 3. Contract: cycles already have comp ids; everything else gets a
        //    fresh singleton id.
        for c in comp.iter_mut() {
            if *c == NONE {
                *c = n_comp;
                n_comp += 1;
            }
        }
        let new_root = comp[cur_root as usize];
        let mut new_edges = Vec::with_capacity(cur_edges.len());
        for (i, e) in cur_edges.iter().enumerate() {
            let cu = comp[e.u as usize];
            let cv = comp[e.v as usize];
            if cu == cv || cv == new_root {
                continue;
            }
            // Entering a cycle displaces that node's cycle edge, so only
            // the difference matters; best-in weight is a lower bound on
            // any in-edge weight, so this cannot underflow.
            let adjust = if in_cycle[e.v as usize] {
                cur_edges[best[e.v as usize] as usize].w
            } else {
                0
            };
            new_edges.push(LvlEdge {
                u: cu,
                v: cv,
                w: e.w - adjust,
                parent: i as u32,
            });
        }

        levels.push(LevelRecord {
            n: cur_n,
            root: cur_root,
            edges: std::mem::take(&mut cur_edges),
            best,
        });
        cur_edges = new_edges;
        cur_n = n_comp as usize;
        cur_root = new_root;
    };

    // Unwind: expand supernodes back into their cycles.
    let mut chosen = final_chosen;
    while let Some(rec) = levels.pop() {
        let mut prev_chosen = vec![NONE; rec.n];
        for &j in chosen.iter() {
            if j == NONE {
                continue; // the contracted level's root
            }
            let i = cur_edges[j as usize].parent;
            prev_chosen[rec.edges[i as usize].v as usize] = i;
        }
        for (v, slot) in prev_chosen.iter_mut().enumerate() {
            if v as u32 != rec.root && *slot == NONE {
                *slot = rec.best[v];
            }
        }
        chosen = prev_chosen;
        cur_edges = rec.edges;
    }

    // `chosen` now indexes level-0 edges, whose `parent` is the EdgeId.
    let mut parent = vec![None; n0];
    let mut parent_edge = vec![None; n0];
    let mut total = 0u64;
    for (v, &c) in chosen.iter().enumerate() {
        if v as u32 == root.0 {
            continue;
        }
        debug_assert_ne!(c, NONE, "non-root node without chosen edge");
        let lvl = cur_edges[c as usize];
        let orig = EdgeId(lvl.parent);
        let e = graph.edge(orig);
        parent[v] = Some(e.src);
        parent_edge[v] = Some(orig);
        total += lvl.w;
    }

    Some(Arborescence {
        root,
        parent,
        parent_edge,
        total_weight: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force minimum arborescence weight by enumerating all parent
    /// assignments and keeping those that form an arborescence.
    fn brute_force<W: Copy>(
        graph: &DiGraph<W>,
        root: NodeId,
        weight: impl Fn(&crate::digraph::Edge<W>) -> u64 + Copy,
    ) -> Option<u64> {
        let n = graph.node_count();
        let mut in_lists: Vec<Vec<EdgeId>> = (0..n)
            .map(|v| graph.in_edges(NodeId(v as u32)).to_vec())
            .collect();
        for (v, lst) in in_lists.iter_mut().enumerate() {
            lst.retain(|&e| graph.edge(e).src.index() != v);
        }
        let nodes: Vec<usize> = (0..n).filter(|&v| v != root.index()).collect();
        let mut best: Option<u64> = None;
        let mut choice: Vec<EdgeId> = Vec::new();

        fn recurse<W: Copy>(
            graph: &DiGraph<W>,
            root: NodeId,
            nodes: &[usize],
            in_lists: &[Vec<EdgeId>],
            choice: &mut Vec<EdgeId>,
            best: &mut Option<u64>,
            weight: impl Fn(&crate::digraph::Edge<W>) -> u64 + Copy,
        ) {
            if choice.len() == nodes.len() {
                // Check: following parents from each node reaches the root.
                let n = graph.node_count();
                let mut parent = vec![None; n];
                for (k, &e) in choice.iter().enumerate() {
                    parent[nodes[k]] = Some(graph.edge(e).src);
                }
                for &v in nodes {
                    let mut cur = NodeId(v as u32);
                    let mut hops = 0;
                    loop {
                        match parent[cur.index()] {
                            None => break,
                            Some(p) => {
                                cur = p;
                                hops += 1;
                                if hops > n {
                                    return; // cycle
                                }
                            }
                        }
                    }
                    if cur != root {
                        return;
                    }
                }
                let w: u64 = choice.iter().map(|&e| weight(graph.edge(e))).sum();
                if best.is_none() || w < best.unwrap() {
                    *best = Some(w);
                }
                return;
            }
            let v = nodes[choice.len()];
            for &e in &in_lists[v] {
                choice.push(e);
                recurse(graph, root, nodes, in_lists, choice, best, weight);
                choice.pop();
            }
        }

        recurse(
            graph,
            root,
            &nodes,
            &in_lists,
            &mut choice,
            &mut best,
            weight,
        );
        best
    }

    fn check_valid(graph: &DiGraph<u64>, arb: &Arborescence) {
        let n = graph.node_count();
        assert_eq!(arb.parent[arb.root.index()], None);
        let mut recomputed = 0u64;
        for v in 0..n {
            if v == arb.root.index() {
                continue;
            }
            let e = arb.parent_edge[v].expect("non-root must have an edge");
            let edge = graph.edge(e);
            assert_eq!(edge.dst.index(), v, "edge must enter its node");
            assert_eq!(Some(edge.src), arb.parent[v]);
            recomputed += edge.weight;
            // parent chain reaches root without cycling
            let mut cur = NodeId(v as u32);
            let mut hops = 0;
            while let Some(p) = arb.parent[cur.index()] {
                cur = p;
                hops += 1;
                assert!(hops <= n, "cycle in arborescence");
            }
            assert_eq!(cur, arb.root);
        }
        assert_eq!(recomputed, arb.total_weight);
    }

    #[test]
    fn simple_star_is_trivial() {
        let mut g = DiGraph::new(4);
        for v in 1..4u32 {
            g.add_edge(NodeId(0), NodeId(v), u64::from(v));
        }
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        check_valid(&g, &arb);
        assert_eq!(arb.total_weight, 1 + 2 + 3);
    }

    #[test]
    fn prefers_cheap_chain_over_expensive_star() {
        let mut g = DiGraph::new(4);
        // expensive direct edges
        g.add_edge(NodeId(0), NodeId(1), 10u64);
        g.add_edge(NodeId(0), NodeId(2), 10);
        g.add_edge(NodeId(0), NodeId(3), 10);
        // cheap chain
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        check_valid(&g, &arb);
        assert_eq!(arb.total_weight, 12);
    }

    #[test]
    fn two_cycle_is_broken_correctly() {
        // Classic case requiring contraction: 1 and 2 point at each other
        // cheaply; root reaches them expensively.
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 10u64);
        g.add_edge(NodeId(0), NodeId(2), 12);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(1), 1);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        check_valid(&g, &arb);
        // optimum: 0->1 (10) + 1->2 (1)
        assert_eq!(arb.total_weight, 11);
    }

    #[test]
    fn nested_contractions() {
        // Two overlapping cycles forcing multiple contraction levels.
        let mut g = DiGraph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 100u64);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(2), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        g.add_edge(NodeId(3), NodeId(2), 1);
        g.add_edge(NodeId(3), NodeId(4), 1);
        g.add_edge(NodeId(4), NodeId(1), 1);
        g.add_edge(NodeId(0), NodeId(4), 90);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        check_valid(&g, &arb);
        let brute = brute_force(&g, NodeId(0), |e| e.weight).unwrap();
        assert_eq!(arb.total_weight, brute);
    }

    #[test]
    fn unreachable_node_returns_none() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1u64);
        g.add_edge(NodeId(2), NodeId(1), 1);
        assert!(min_cost_arborescence(&g, NodeId(0), |e| e.weight).is_none());
    }

    #[test]
    fn single_node() {
        let g: DiGraph<u64> = DiGraph::new(1);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        assert_eq!(arb.total_weight, 0);
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 7u64);
        g.add_edge(NodeId(0), NodeId(1), 3);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        check_valid(&g, &arb);
        assert_eq!(arb.total_weight, 3);
        assert_eq!(arb.parent_edge[1], Some(EdgeId(1)));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(1), NodeId(1), 0u64);
        g.add_edge(NodeId(0), NodeId(1), 5);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).unwrap();
        check_valid(&g, &arb);
        assert_eq!(arb.total_weight, 5);
    }

    #[test]
    fn matches_brute_force_on_dense_graphs() {
        // Deterministic pseudo-random dense graphs, all sizes 2..=5.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 2..=5usize {
            for _case in 0..30 {
                let mut g = DiGraph::new(n);
                for u in 0..n as u32 {
                    for v in 0..n as u32 {
                        if u == v || v == 0 {
                            continue;
                        }
                        if next() % 100 < 70 {
                            g.add_edge(NodeId(u), NodeId(v), next() % 50);
                        }
                    }
                }
                let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight);
                let brute = brute_force(&g, NodeId(0), |e| e.weight);
                match (arb, brute) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        check_valid(&g, &a);
                        assert_eq!(a.total_weight, b, "n={n} graph mismatch");
                    }
                    (a, b) => panic!(
                        "feasibility mismatch: edmonds={:?} brute={:?}",
                        a.map(|x| x.total_weight),
                        b
                    ),
                }
            }
        }
    }
}
