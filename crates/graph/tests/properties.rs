//! Property-based tests for the graph substrate.

use dsv_graph::digraph::DiGraph;
use dsv_graph::undirected::UnGraph;
use dsv_graph::{
    bellman_ford, dijkstra, kruskal_mst, min_cost_arborescence, prim_mst, NodeId, RootedTree,
};
use proptest::prelude::*;

/// Strategy: a random directed graph as (n, edges) with weights.
fn arb_digraph(
    max_n: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32, 0u64..1000);
        (Just(n), proptest::collection::vec(edge, 0..=max_edges))
    })
}

/// Strategy: a random *connected* undirected graph: a random spanning tree
/// plus extra edges.
fn arb_connected_ungraph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, u64)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let tree_weights = proptest::collection::vec(0u64..1000, n - 1);
        let tree_attach = proptest::collection::vec(0u32..u32::MAX, n - 1);
        let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 0u64..1000), 0..2 * n);
        (Just(n), tree_weights, tree_attach, extra).prop_map(|(n, tw, ta, extra)| {
            let mut edges: Vec<(u32, u32, u64)> = Vec::new();
            for v in 1..n as u32 {
                // attach v to a uniformly chosen earlier node
                let p = ta[(v - 1) as usize] % v;
                edges.push((p, v, tw[(v - 1) as usize]));
            }
            for (a, b, w) in extra {
                if a != b {
                    edges.push((a, b, w));
                }
            }
            (n, edges)
        })
    })
}

fn build_digraph(n: usize, edges: &[(u32, u32, u64)]) -> DiGraph<u64> {
    let mut g = DiGraph::new(n);
    for &(u, v, w) in edges {
        g.add_edge(NodeId(u), NodeId(v), w);
    }
    g
}

fn build_ungraph(n: usize, edges: &[(u32, u32, u64)]) -> UnGraph<u64> {
    let mut g = UnGraph::new(n);
    for &(a, b, w) in edges {
        if a != b {
            g.add_edge(NodeId(a), NodeId(b), w);
        }
    }
    g
}

proptest! {
    /// Dijkstra agrees with the Bellman–Ford oracle on arbitrary digraphs.
    #[test]
    fn dijkstra_matches_bellman_ford((n, edges) in arb_digraph(12, 40)) {
        let g = build_digraph(n, &edges);
        let sp = dijkstra(&g, NodeId(0), |e| e.weight);
        let bf = bellman_ford(&g, NodeId(0), |e| e.weight);
        prop_assert_eq!(sp.dist, bf);
    }

    /// Dijkstra parents encode paths whose cost equals the distance.
    #[test]
    fn dijkstra_paths_are_consistent((n, edges) in arb_digraph(12, 40)) {
        let g = build_digraph(n, &edges);
        let sp = dijkstra(&g, NodeId(0), |e| e.weight);
        for v in 0..n as u32 {
            if let Some(path) = sp.path_to(NodeId(v)) {
                // Each consecutive pair must be an edge; total = dist.
                let mut total = 0u64;
                for win in path.windows(2) {
                    let best = g.out_edges(win[0]).iter()
                        .map(|&e| g.edge(e))
                        .filter(|e| e.dst == win[1])
                        .map(|e| e.weight)
                        .min();
                    // The tree edge might not be the *cheapest* parallel
                    // edge, but dist uses the relaxed weight; using min is
                    // a lower bound, so check total >= dist via min and
                    // exact match via recomputation below.
                    prop_assert!(best.is_some(), "path uses a non-edge");
                    total += best.unwrap();
                }
                prop_assert!(total >= sp.dist[v as usize].unwrap());
            }
        }
    }

    /// Prim and Kruskal agree on total MST weight for connected graphs.
    #[test]
    fn prim_equals_kruskal((n, edges) in arb_connected_ungraph(14)) {
        let g = build_ungraph(n, &edges);
        let p = prim_mst(&g, NodeId(0), |e| e.weight).expect("connected");
        let k = kruskal_mst(&g, |e| e.weight).expect("connected");
        prop_assert_eq!(p.total_weight, k.total_weight);
    }

    /// An MST is never heavier than the random spanning tree we generated
    /// the graph around (the first n-1 edges form a spanning tree).
    #[test]
    fn mst_is_minimal_vs_known_tree((n, edges) in arb_connected_ungraph(14)) {
        let g = build_ungraph(n, &edges);
        let known_tree_weight: u64 = edges[..n - 1].iter().map(|&(_, _, w)| w).sum();
        let p = prim_mst(&g, NodeId(0), |e| e.weight).expect("connected");
        prop_assert!(p.total_weight <= known_tree_weight);
    }

    /// Edmonds' arborescence: valid parent structure, weight no larger than
    /// the star solution from the root (when the root connects to all).
    #[test]
    fn edmonds_no_worse_than_star((n, mut edges) in arb_digraph(10, 30), star in proptest::collection::vec(1u64..1000, 10)) {
        // Ensure feasibility: add a root edge to every node.
        for v in 1..n as u32 {
            edges.push((0, v, star[v as usize % star.len()]));
        }
        let g = build_digraph(n, &edges);
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).expect("feasible");
        let star_weight: u64 = (1..n as u32)
            .map(|v| g.in_edges(NodeId(v)).iter()
                .map(|&e| g.edge(e))
                .filter(|e| e.src == NodeId(0))
                .map(|e| e.weight).min().unwrap())
            .sum();
        prop_assert!(arb.total_weight <= star_weight);
        // Structure check: tree reaches root from everywhere.
        let tree = RootedTree::from_parents(NodeId(0), arb.parent.clone());
        prop_assert!(tree.is_ok());
        // Reported weight equals recomputed weight of chosen edges.
        let recomputed: u64 = arb.parent_edge.iter().flatten()
            .map(|&e| g.edge(e).weight).sum();
        prop_assert_eq!(recomputed, arb.total_weight);
    }

    /// Edmonds on undirected-style graphs (both arcs present) matches the
    /// undirected MST weight... is false in general, but it must always be
    /// >= MST (arborescence is constrained by direction) and <= 2*MST here.
    /// We only check validity and a sane bound.
    #[test]
    fn edmonds_on_symmetric_graphs_bounded((n, edges) in arb_connected_ungraph(10)) {
        let mut g = DiGraph::new(n);
        for &(a, b, w) in &edges {
            if a != b {
                g.add_edge(NodeId(a), NodeId(b), w);
                g.add_edge(NodeId(b), NodeId(a), w);
            }
        }
        let ug = build_ungraph(n, &edges);
        let mst = prim_mst(&ug, NodeId(0), |e| e.weight).expect("connected");
        let arb = min_cost_arborescence(&g, NodeId(0), |e| e.weight).expect("feasible");
        // For symmetric weights the optimal arborescence weight equals the
        // MST weight (orient the MST away from the root).
        prop_assert_eq!(arb.total_weight, mst.total_weight);
    }

    /// Subtree sizes sum telescope: root subtree = n; sizes of children
    /// partition the parent's subtree.
    #[test]
    fn subtree_sizes_partition((n, edges) in arb_connected_ungraph(14)) {
        let g = build_ungraph(n, &edges);
        let p = prim_mst(&g, NodeId(0), |e| e.weight).expect("connected");
        let tree = RootedTree::from_parents(NodeId(0), p.parent).unwrap();
        let sizes = tree.subtree_sizes();
        prop_assert_eq!(sizes[0] as usize, n);
        for v in 0..n {
            let child_sum: u32 = tree.children(NodeId(v as u32)).iter()
                .map(|c| sizes[c.index()]).sum();
            prop_assert_eq!(sizes[v], child_sum + 1);
        }
    }
}
