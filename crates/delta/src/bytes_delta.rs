//! Byte-level copy/insert deltas (the role xdelta/LibXDiff play in §5.2).
//!
//! The encoder indexes the source in fixed-size blocks with a rolling
//! lookup table, scans the target greedily, and emits `Copy{offset,len}` /
//! `Insert{bytes}` instructions, varint-encoded. This is the delta format
//! the object store uses for arbitrary binary version content; line scripts
//! ([`crate::script`]) are preferred for text.

use dsv_compress::varint::{decode_u64, encode_u64};

/// Block size for the source index. Matches of at least this length can be
/// found; shorter repeats are emitted as literals.
const BLOCK: usize = 16;

/// One instruction of a byte delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes from the *source* at `offset`.
    Copy {
        /// Byte offset in the source.
        offset: u64,
        /// Number of bytes.
        len: u64,
    },
    /// Insert literal bytes.
    Insert {
        /// The literal bytes.
        bytes: Vec<u8>,
    },
}

/// Errors applying or decoding a byte delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A copy referenced bytes outside the source.
    CopyOutOfRange,
    /// The encoded stream was malformed or truncated.
    Malformed,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::CopyOutOfRange => write!(f, "copy exceeds source bounds"),
            DeltaError::Malformed => write!(f, "malformed delta stream"),
        }
    }
}

impl std::error::Error for DeltaError {}

#[inline]
fn block_hash(bytes: &[u8]) -> u64 {
    // FNV-1a over one block.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Computes a delta such that `apply(src, &ops) == dst`.
pub fn diff(src: &[u8], dst: &[u8]) -> Vec<DeltaOp> {
    if dst.is_empty() {
        return Vec::new();
    }
    if src.is_empty() {
        return vec![DeltaOp::Insert {
            bytes: dst.to_vec(),
        }];
    }

    // Index source blocks: hash -> list of offsets (bounded buckets).
    let nblocks = src.len() / BLOCK;
    let mut table: std::collections::HashMap<u64, Vec<u32>> =
        std::collections::HashMap::with_capacity(nblocks);
    for i in 0..nblocks {
        let off = i * BLOCK;
        let h = block_hash(&src[off..off + BLOCK]);
        let bucket = table.entry(h).or_default();
        if bucket.len() < 8 {
            bucket.push(off as u32);
        }
    }

    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush = |ops: &mut Vec<DeltaOp>, from: usize, to: usize| {
        if from < to {
            ops.push(DeltaOp::Insert {
                bytes: dst[from..to].to_vec(),
            });
        }
    };

    while i + BLOCK <= dst.len() {
        let h = block_hash(&dst[i..i + BLOCK]);
        let mut best: Option<(usize, usize, usize)> = None; // (src_off, dst_off, len)
        if let Some(bucket) = table.get(&h) {
            for &cand in bucket {
                let cand = cand as usize;
                if src[cand..cand + BLOCK] != dst[i..i + BLOCK] {
                    continue; // hash collision
                }
                // Extend forwards.
                let mut len = BLOCK;
                while cand + len < src.len()
                    && i + len < dst.len()
                    && src[cand + len] == dst[i + len]
                {
                    len += 1;
                }
                // Extend backwards into pending literals.
                let mut back = 0usize;
                while back < cand
                    && back < i - lit_start
                    && src[cand - back - 1] == dst[i - back - 1]
                {
                    back += 1;
                }
                let total = len + back;
                if best.is_none_or(|(_, _, l)| total > l) {
                    best = Some((cand - back, i - back, total));
                }
            }
        }
        match best {
            Some((s_off, d_off, len)) => {
                flush(&mut ops, lit_start, d_off);
                ops.push(DeltaOp::Copy {
                    offset: s_off as u64,
                    len: len as u64,
                });
                i = d_off + len;
                lit_start = i;
            }
            None => i += 1,
        }
    }
    flush(&mut ops, lit_start, dst.len());
    ops
}

/// Applies delta `ops` to `src`, reconstructing the target.
pub fn apply(src: &[u8], ops: &[DeltaOp]) -> Result<Vec<u8>, DeltaError> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                let start = *offset as usize;
                let end = start
                    .checked_add(*len as usize)
                    .ok_or(DeltaError::CopyOutOfRange)?;
                if end > src.len() {
                    return Err(DeltaError::CopyOutOfRange);
                }
                out.extend_from_slice(&src[start..end]);
            }
            DeltaOp::Insert { bytes } => out.extend_from_slice(bytes),
        }
    }
    Ok(out)
}

/// Serializes ops: per op a tag varint (`len << 1` = copy, `(len << 1) | 1`
/// = insert) followed by the payload (copy offset / literal bytes).
pub fn encode(ops: &[DeltaOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Copy { offset, len } => {
                encode_u64(len << 1, &mut out);
                encode_u64(*offset, &mut out);
            }
            DeltaOp::Insert { bytes } => {
                encode_u64(((bytes.len() as u64) << 1) | 1, &mut out);
                out.extend_from_slice(bytes);
            }
        }
    }
    out
}

/// Parses a stream produced by [`encode`].
pub fn decode(input: &[u8]) -> Result<Vec<DeltaOp>, DeltaError> {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while pos < input.len() {
        let (tag, used) = decode_u64(&input[pos..]).ok_or(DeltaError::Malformed)?;
        pos += used;
        if tag & 1 == 0 {
            let (offset, used) = decode_u64(&input[pos..]).ok_or(DeltaError::Malformed)?;
            pos += used;
            ops.push(DeltaOp::Copy {
                offset,
                len: tag >> 1,
            });
        } else {
            let len = (tag >> 1) as usize;
            if pos + len > input.len() {
                return Err(DeltaError::Malformed);
            }
            ops.push(DeltaOp::Insert {
                bytes: input[pos..pos + len].to_vec(),
            });
            pos += len;
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &[u8], dst: &[u8]) -> usize {
        let ops = diff(src, dst);
        assert_eq!(apply(src, &ops).unwrap(), dst, "apply must reconstruct");
        let enc = encode(&ops);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec, ops, "encode/decode must roundtrip");
        enc.len()
    }

    #[test]
    fn identical_content_is_one_copy() {
        let data = b"0123456789abcdef0123456789abcdef".repeat(4);
        let size = roundtrip(&data, &data);
        assert!(size < 8, "identical content should be a single copy op");
    }

    #[test]
    fn small_edit_yields_small_delta() {
        let src: Vec<u8> = (0..2000u32)
            .flat_map(|i| format!("row-{i}\n").into_bytes())
            .collect();
        let mut dst = src.clone();
        // Change a few bytes in the middle.
        let pos = dst.len() / 2;
        dst[pos] = b'X';
        dst[pos + 1] = b'Y';
        let size = roundtrip(&src, &dst);
        assert!(size < 200, "delta size {size} too large for a 2-byte edit");
    }

    #[test]
    fn empty_cases() {
        assert_eq!(roundtrip(b"", b""), 0);
        roundtrip(b"", b"new content entirely");
        assert_eq!(roundtrip(b"old content", b""), 0);
    }

    #[test]
    fn unrelated_content_degenerates_to_insert() {
        let src = vec![b'a'; 500];
        let dst = vec![b'b'; 500];
        let ops = diff(&src, &dst);
        assert_eq!(apply(&src, &ops).unwrap(), dst);
    }

    #[test]
    fn appended_content() {
        let src = b"shared prefix that is long enough to match blocks".repeat(3);
        let mut dst = src.clone();
        dst.extend_from_slice(b"!! new tail data");
        let size = roundtrip(&src, &dst);
        assert!(size < 64);
    }

    #[test]
    fn prepended_content() {
        let src = b"shared suffix that is long enough to match blocks".repeat(3);
        let mut dst = b"!! new head ".to_vec();
        dst.extend_from_slice(&src);
        let size = roundtrip(&src, &dst);
        assert!(size < 64);
    }

    #[test]
    fn apply_rejects_bad_copy() {
        let ops = vec![DeltaOp::Copy {
            offset: 5,
            len: 100,
        }];
        assert_eq!(apply(b"short", &ops), Err(DeltaError::CopyOutOfRange));
        let ops = vec![DeltaOp::Copy {
            offset: u64::MAX,
            len: 2,
        }];
        assert_eq!(apply(b"short", &ops), Err(DeltaError::CopyOutOfRange));
    }

    #[test]
    fn decode_rejects_truncated_literal() {
        let ops = vec![DeltaOp::Insert {
            bytes: b"0123456789".to_vec(),
        }];
        let enc = encode(&ops);
        assert_eq!(decode(&enc[..enc.len() - 2]), Err(DeltaError::Malformed));
    }

    #[test]
    fn block_aligned_and_unaligned_moves() {
        // Content shifted by a non-block amount must still be found.
        let body = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789".repeat(8);
        let mut dst = b"xyz".to_vec();
        dst.extend_from_slice(&body);
        let size = roundtrip(&body, &dst);
        assert!(size < 80, "shifted content should mostly copy, got {size}");
    }
}
