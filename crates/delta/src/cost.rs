//! Cost models: turning bytes into the `⟨Δ, Φ⟩` annotations of §2.1.
//!
//! The paper identifies two regimes for the relationship between storage
//! cost `Δ` and recreation cost `Φ`:
//!
//! - **`Φ = Δ`** — uncompressed line/cell diffs where recreation is
//!   I/O-bound: the time to fetch and replay a delta is proportional to its
//!   size ([`CostModel::Proportional`]).
//! - **`Φ ≠ Δ`** — compressed deltas (or generating scripts), where a
//!   compact stored form can take disproportionate work to apply
//!   ([`CostModel::CompressedStorage`]).
//!
//! Costs are abstract `u64` units: bytes for `Δ`, byte-equivalents of work
//! for `Φ` (read the delta, then write the reconstructed version).

use dsv_compress::lz;

/// A `⟨storage, recreation⟩` cost pair — the per-edge annotation of the
/// paper's version/storage graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CostAnnotation {
    /// Storage cost `Δ` (bytes needed to record this object).
    pub storage: u64,
    /// Recreation cost `Φ` (work to recreate the target given the source).
    pub recreation: u64,
}

impl CostAnnotation {
    /// Constructs an annotation directly.
    pub fn new(storage: u64, recreation: u64) -> Self {
        CostAnnotation {
            storage,
            recreation,
        }
    }
}

/// How raw delta/version bytes map to `⟨Δ, Φ⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// `Φ = Δ`: store deltas uncompressed; recreation cost equals bytes
    /// processed (the paper's Scenarios 1 and 2).
    #[default]
    Proportional,
    /// `Φ ≠ Δ`: store deltas LZ-compressed. `Δ` is the compressed size;
    /// `Φ` is the uncompressed delta size plus the size of the
    /// reconstructed version (decompress + patch work — Scenario 3).
    CompressedStorage,
}

/// Annotation for storing a version **in its entirety** (`⟨Δ_ii, Φ_ii⟩`).
pub fn full_annotation(model: CostModel, raw: &[u8]) -> CostAnnotation {
    match model {
        CostModel::Proportional => CostAnnotation::new(raw.len() as u64, raw.len() as u64),
        CostModel::CompressedStorage => {
            // The store keeps the raw payload when compression does not
            // shrink it (see `Object::encode`), so the modelled storage
            // cost mirrors that fallback.
            let compressed = lz::compress(raw).len().min(raw.len());
            CostAnnotation::new(compressed as u64, raw.len() as u64)
        }
    }
}

/// Annotation for storing a version as a **delta** (`⟨Δ_ij, Φ_ij⟩`), given
/// the encoded (uncompressed) delta bytes and the size of the version the
/// delta reconstructs.
pub fn delta_annotation(
    model: CostModel,
    encoded_delta: &[u8],
    target_len: usize,
) -> CostAnnotation {
    match model {
        CostModel::Proportional => {
            CostAnnotation::new(encoded_delta.len() as u64, encoded_delta.len() as u64)
        }
        CostModel::CompressedStorage => {
            // Same raw fallback as `full_annotation`.
            let compressed = lz::compress(encoded_delta).len().min(encoded_delta.len());
            CostAnnotation::new(
                compressed as u64,
                encoded_delta.len() as u64 + target_len as u64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::line_diff;

    fn version(rows: usize) -> Vec<u8> {
        (0..rows)
            .flat_map(|i| format!("{i},value-{},2015\n", i * 3).into_bytes())
            .collect()
    }

    #[test]
    fn proportional_means_phi_equals_delta() {
        let v = version(100);
        let full = full_annotation(CostModel::Proportional, &v);
        assert_eq!(full.storage, full.recreation);
        assert_eq!(full.storage, v.len() as u64);

        let v2 = version(101);
        let d = line_diff(&v, &v2).encode();
        let ann = delta_annotation(CostModel::Proportional, &d, v2.len());
        assert_eq!(ann.storage, ann.recreation);
        assert_eq!(ann.storage, d.len() as u64);
    }

    #[test]
    fn compressed_model_diverges() {
        let v = version(500);
        let full = full_annotation(CostModel::CompressedStorage, &v);
        // CSV compresses: stored form smaller than recreation work.
        assert!(full.storage < full.recreation);
        assert_eq!(full.recreation, v.len() as u64);
    }

    #[test]
    fn compressed_delta_recreation_includes_target() {
        let a = version(300);
        let b = version(301);
        let d = line_diff(&a, &b).encode();
        let ann = delta_annotation(CostModel::CompressedStorage, &d, b.len());
        assert_eq!(ann.recreation, d.len() as u64 + b.len() as u64);
        assert!(ann.storage <= d.len() as u64 + 16);
    }

    #[test]
    fn small_delta_costs_less_than_materialization() {
        // The core premise: similar versions should be cheap to delta.
        let a = version(1000);
        let b = {
            let mut t = a.clone();
            t.extend_from_slice(b"1000,tail,2015\n");
            t
        };
        for model in [CostModel::Proportional, CostModel::CompressedStorage] {
            let full = full_annotation(model, &b);
            let d = line_diff(&a, &b).encode();
            let delta = delta_annotation(model, &d, b.len());
            assert!(
                delta.storage * 10 < full.storage,
                "{model:?}: delta {} vs full {}",
                delta.storage,
                full.storage
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let full = full_annotation(CostModel::Proportional, b"");
        assert_eq!(full, CostAnnotation::new(0, 0));
        let ann = delta_annotation(CostModel::Proportional, b"", 0);
        assert_eq!(ann, CostAnnotation::new(0, 0));
    }
}
