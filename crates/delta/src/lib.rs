#![warn(missing_docs)]

//! Differencing substrate: the "delta" mechanisms of the paper's §2.1.
//!
//! A *delta* from version `Vi` to `Vj` is the information needed to
//! construct `Vj` given `Vi`. The paper lists several mechanisms (UNIX-style
//! line diffs, XOR, cell-level tabular diffs, generating scripts); this
//! crate implements them with real bytes so that storage costs (`Δ` = the
//! encoded delta size) and recreation costs (`Φ` = work to apply it) come
//! from an actual differencing algorithm rather than synthetic numbers:
//!
//! - [`myers`]: the Myers O(ND) greedy LCS diff on arbitrary token
//!   sequences.
//! - [`script`]: line-level edit scripts (directional and two-way).
//! - [`bytes_delta`]: a compact copy/insert byte-delta format (the role
//!   xdelta/LibXDiff play in the paper), optionally LZ-compressed.
//! - [`xor`]: XOR deltas — the paper's example of a *symmetric* mechanism,
//!   yielding the undirected case.
//! - [`tabular`]: cell-level deltas for tabular (CSV-like) data.
//! - [`similarity`]: shingle/min-hash resemblance sketches for choosing
//!   which matrix entries to reveal between version-graph-distant versions
//!   (the paper's pointer to Douglis & Iyengar, ref.\&nbsp;19).
//! - [`cost`]: turns any delta into the `⟨Δ, Φ⟩` annotation used by the
//!   optimizer.

pub mod bytes_delta;
pub mod cost;
pub mod myers;
pub mod script;
pub mod similarity;
pub mod tabular;
pub mod xor;

pub use bytes_delta::{apply as apply_delta, diff as byte_diff, DeltaError, DeltaOp};
pub use cost::{delta_annotation, full_annotation, CostAnnotation, CostModel};
pub use myers::{diff_slices, DiffOp};
pub use script::{line_diff, LineScript};
pub use similarity::ResemblanceSketch;
pub use tabular::{Table, TableDelta};
pub use xor::XorDelta;
