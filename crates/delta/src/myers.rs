//! Myers' O(ND) difference algorithm over generic token slices.
//!
//! This is the algorithm underlying UNIX `diff`, which the paper uses to
//! compute deltas for its synthetic datasets ("we use deltas based on
//! UNIX-style diffs", §5.1). It finds a shortest edit script between two
//! sequences; [`crate::script`] lifts it to line-level deltas and
//! [`crate::bytes_delta`] provides the byte-level analogue.
//!
//! For very distant inputs the full O(ND) search would cost O((N+M)²); a
//! configurable bound caps the search and falls back to a trivial
//! replace-everything script, which is always correct and only costs
//! optimality (the paper likewise only reveals deltas between nearby
//! versions).

/// One hunk of a diff between sequences `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOp {
    /// `len` tokens equal: `a[a_pos..a_pos+len] == b[b_pos..b_pos+len]`.
    Equal {
        /// Start in `a`.
        a_pos: usize,
        /// Start in `b`.
        b_pos: usize,
        /// Run length.
        len: usize,
    },
    /// `len` tokens of `a` deleted, starting at `a_pos`.
    Delete {
        /// Start in `a`.
        a_pos: usize,
        /// Run length.
        len: usize,
    },
    /// `len` tokens of `b` inserted (after position `a_pos` of `a`).
    Insert {
        /// Position in `a` the insertion happens at.
        a_pos: usize,
        /// Start in `b`.
        b_pos: usize,
        /// Run length.
        len: usize,
    },
}

/// Elementary backtracked moves before coalescing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Move {
    Keep,
    Del,
    Ins,
}

/// Computes a shortest edit script between `a` and `b` with the default
/// search bound (`1024 + (n+m)/4` edit steps).
pub fn diff_slices<T: PartialEq>(a: &[T], b: &[T]) -> Vec<DiffOp> {
    let bound = 1024 + (a.len() + b.len()) / 4;
    diff_slices_bounded(a, b, bound)
}

/// Computes an edit script between `a` and `b`, searching at most `max_d`
/// edit steps; if the optimal distance exceeds `max_d`, returns the trivial
/// delete-all/insert-all script (over whatever the common prefix and
/// suffix leave behind).
pub fn diff_slices_bounded<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Vec<DiffOp> {
    let n = a.len();
    let m = b.len();
    // Strip the common prefix and suffix before the O(ND) search (classic
    // diff preprocessing). The versions this workload diffs are
    // near-identical, so the quadratic trace runs over a tiny middle
    // window instead of the whole inputs. Matching a shared first/last
    // token is always edit-distance-optimal for insert/delete scripts, so
    // the result stays a shortest script.
    let mut pre = 0;
    while pre < n && pre < m && a[pre] == b[pre] {
        pre += 1;
    }
    let mut suf = 0;
    while suf < n - pre && suf < m - pre && a[n - 1 - suf] == b[m - 1 - suf] {
        suf += 1;
    }
    let middle = diff_middle(&a[pre..n - suf], &b[pre..m - suf], max_d);
    if pre == 0 && suf == 0 {
        return middle;
    }
    // Re-anchor the middle ops to full-input positions. The middle's
    // first and last tokens differ by construction (or a side is empty,
    // yielding a pure Insert/Delete), so it never starts or ends with an
    // Equal run and plain concatenation needs no merging; an empty middle
    // means `a == b` (the prefix consumed everything).
    let mut ops = Vec::with_capacity(middle.len() + 2);
    if pre > 0 {
        ops.push(DiffOp::Equal {
            a_pos: 0,
            b_pos: 0,
            len: pre,
        });
    }
    for op in middle {
        ops.push(match op {
            DiffOp::Equal { a_pos, b_pos, len } => DiffOp::Equal {
                a_pos: a_pos + pre,
                b_pos: b_pos + pre,
                len,
            },
            DiffOp::Delete { a_pos, len } => DiffOp::Delete {
                a_pos: a_pos + pre,
                len,
            },
            DiffOp::Insert { a_pos, b_pos, len } => DiffOp::Insert {
                a_pos: a_pos + pre,
                b_pos: b_pos + pre,
                len,
            },
        });
    }
    if suf > 0 {
        ops.push(DiffOp::Equal {
            a_pos: n - suf,
            b_pos: m - suf,
            len: suf,
        });
    }
    ops
}

/// The unstripped Myers search over a (possibly pre-stripped) window.
fn diff_middle<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Vec<DiffOp> {
    let n = a.len();
    let m = b.len();
    if n == 0 && m == 0 {
        return Vec::new();
    }
    if n == 0 {
        return vec![DiffOp::Insert {
            a_pos: 0,
            b_pos: 0,
            len: m,
        }];
    }
    if m == 0 {
        return vec![DiffOp::Delete { a_pos: 0, len: n }];
    }

    match shortest_edit_trace(a, b, max_d) {
        Some((d_final, trace)) => {
            let moves = backtrack(a, b, d_final, &trace);
            recycle_trace(trace);
            coalesce(&moves)
        }
        None => vec![
            DiffOp::Delete { a_pos: 0, len: n },
            DiffOp::Insert {
                a_pos: n,
                b_pos: 0,
                len: m,
            },
        ],
    }
}

// The trace's row buffers are recycled through a thread-local pool:
// freeing megabytes of short-lived Vecs after every diff makes glibc's
// non-main-arena heaps shrink (madvise) and refault on the next diff,
// which dominates wall-clock when thousands of diffs run back-to-back on
// dsv-par workers. The pool lives and dies with the thread — scoped
// workers release it when their `par_map` call ends.
thread_local! {
    static TRACE_POOL: std::cell::RefCell<Vec<Vec<isize>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Total `isize`s a thread's pool may pin (4 MiB): covers the trace of a
/// D ≈ 700 diff outright, while one pathological far-pair diff cannot
/// park its whole O(D²) trace in a long-lived thread forever.
const TRACE_POOL_BUDGET: usize = 512 * 1024;

fn pooled_row(window: &[isize]) -> Vec<isize> {
    let mut row = TRACE_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    row.clear();
    row.extend_from_slice(window);
    row
}

fn recycle_trace(trace: Vec<Vec<isize>>) {
    TRACE_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let mut pinned: usize = pool.iter().map(Vec::capacity).sum();
        // Recycle large rows first — they are the expensive reallocations
        // — until the byte budget is reached.
        let mut rows: Vec<Vec<isize>> = trace;
        rows.sort_by_key(|r| std::cmp::Reverse(r.capacity()));
        for row in rows {
            if pinned + row.capacity() > TRACE_POOL_BUDGET {
                break;
            }
            pinned += row.capacity();
            pool.push(row);
        }
    });
}

/// The number of edit operations (inserts + deletes) in a script.
pub fn edit_distance(ops: &[DiffOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            DiffOp::Equal { .. } => 0,
            DiffOp::Delete { len, .. } | DiffOp::Insert { len, .. } => *len,
        })
        .sum()
}

/// Forward phase: returns (d, per-round V snapshots) or None if `max_d`
/// was exceeded.
///
/// Round `d` only ever reads/writes diagonals `k ∈ [-d, d]`, so each
/// snapshot keeps just that window (backtracking indexes it as `k + d`).
/// This drops the trace from O(D·(N+M)) to O(D²) words — the difference
/// between ~100 MB and a few MB per distant pair, which matters once
/// many diffs run concurrently on the dsv-par runtime.
fn shortest_edit_trace<T: PartialEq>(
    a: &[T],
    b: &[T],
    max_d: usize,
) -> Option<(usize, Vec<Vec<isize>>)> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max = (n + m) as usize;
    let limit = max.min(max_d);
    let offset = max as isize;
    let mut v = vec![0isize; 2 * max + 1];
    let mut trace: Vec<Vec<isize>> = Vec::new();

    for d in 0..=(limit as isize) {
        trace.push(pooled_row(
            &v[(offset - d) as usize..=(offset + d) as usize],
        ));
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                return Some((d as usize, trace));
            }
            k += 2;
        }
    }
    recycle_trace(trace);
    None
}

/// Backward phase: reconstruct the move sequence from the trace. Each
/// `trace[d]` is the `k ∈ [-d, d]` window, indexed as `k + d`.
fn backtrack<T: PartialEq>(a: &[T], b: &[T], d_final: usize, trace: &[Vec<isize>]) -> Vec<Move> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let mut moves_rev: Vec<Move> = Vec::new();
    let mut x = n;
    let mut y = m;

    for d in (1..=d_final as isize).rev() {
        let v = &trace[d as usize];
        let k = x - y;
        let prev_k = if k == -d || (k != d && v[(k - 1 + d) as usize] < v[(k + 1 + d) as usize]) {
            k + 1
        } else {
            k - 1
        };
        let prev_x = v[(prev_k + d) as usize];
        let prev_y = prev_x - prev_k;
        // Diagonal snake back to the point just after the edit.
        while x > prev_x && y > prev_y {
            moves_rev.push(Move::Keep);
            x -= 1;
            y -= 1;
        }
        if x == prev_x {
            moves_rev.push(Move::Ins); // consumed one token of b
        } else {
            moves_rev.push(Move::Del); // consumed one token of a
        }
        x = prev_x;
        y = prev_y;
    }
    // Leading diagonal at d = 0.
    while x > 0 && y > 0 {
        moves_rev.push(Move::Keep);
        x -= 1;
        y -= 1;
    }
    moves_rev.reverse();
    moves_rev
}

/// Groups elementary moves into run-length [`DiffOp`]s, tracking positions.
fn coalesce(moves: &[Move]) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    let mut a_pos = 0usize;
    let mut b_pos = 0usize;
    let mut i = 0usize;
    while i < moves.len() {
        let kind = moves[i];
        let mut len = 0usize;
        while i < moves.len() && moves[i] == kind {
            len += 1;
            i += 1;
        }
        match kind {
            Move::Keep => {
                ops.push(DiffOp::Equal { a_pos, b_pos, len });
                a_pos += len;
                b_pos += len;
            }
            Move::Del => {
                ops.push(DiffOp::Delete { a_pos, len });
                a_pos += len;
            }
            Move::Ins => {
                ops.push(DiffOp::Insert { a_pos, b_pos, len });
                b_pos += len;
            }
        }
    }
    ops
}

/// Applies a diff to `a`, reconstructing `b`. Primarily a testing aid; the
/// production apply paths live in [`crate::script`] / [`crate::bytes_delta`].
pub fn apply_diff<T: Clone>(a: &[T], b_tokens: &[T], ops: &[DiffOp]) -> Vec<T> {
    let mut out = Vec::new();
    for op in ops {
        match *op {
            DiffOp::Equal { a_pos, len, .. } => out.extend_from_slice(&a[a_pos..a_pos + len]),
            DiffOp::Delete { .. } => {}
            DiffOp::Insert { b_pos, len, .. } => {
                out.extend_from_slice(&b_tokens[b_pos..b_pos + len])
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &str, b: &str) -> Vec<DiffOp> {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let ops = diff_slices(&av, &bv);
        let rebuilt: String = apply_diff(&av, &bv, &ops).into_iter().collect();
        assert_eq!(rebuilt, b, "diff {a:?} -> {b:?} must reconstruct");
        ops
    }

    #[test]
    fn identical_inputs_yield_single_equal() {
        let ops = check("abcdef", "abcdef");
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], DiffOp::Equal { len: 6, .. }));
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA -> CBABAC has edit distance 5 (Myers' paper example).
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        let ops = diff_slices(&a, &b);
        assert_eq!(edit_distance(&ops), 5);
        assert_eq!(
            apply_diff(&a, &b, &ops).into_iter().collect::<String>(),
            "CBABAC"
        );
    }

    #[test]
    fn empty_to_nonempty() {
        let ops = check("", "xyz");
        assert_eq!(
            ops,
            vec![DiffOp::Insert {
                a_pos: 0,
                b_pos: 0,
                len: 3
            }]
        );
    }

    #[test]
    fn nonempty_to_empty() {
        let ops = check("xyz", "");
        assert_eq!(ops, vec![DiffOp::Delete { a_pos: 0, len: 3 }]);
    }

    #[test]
    fn both_empty() {
        assert!(check("", "").is_empty());
    }

    #[test]
    fn single_insertion_in_middle() {
        let ops = check("hello world", "hello brave world");
        assert_eq!(edit_distance(&ops), 6); // "brave " inserted
    }

    #[test]
    fn deletion_is_asymmetric_in_size() {
        // Deleting a block yields a small script; the reverse direction
        // must carry the block. This is the paper's asymmetry example.
        let big = "x".repeat(100);
        let a: Vec<char> = format!("head{big}tail").chars().collect();
        let b: Vec<char> = "headtail".chars().collect();
        let fwd = diff_slices(&a, &b);
        let rev = diff_slices(&b, &a);
        let fwd_inserted: usize = fwd
            .iter()
            .filter_map(|o| match o {
                DiffOp::Insert { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        let rev_inserted: usize = rev
            .iter()
            .filter_map(|o| match o {
                DiffOp::Insert { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(fwd_inserted, 0);
        assert_eq!(rev_inserted, 100);
    }

    #[test]
    fn bounded_search_falls_back_to_replace() {
        let a: Vec<u8> = (0..200u8).collect();
        let b: Vec<u8> = (0..200u8).rev().collect();
        let ops = diff_slices_bounded(&a, &b, 3);
        assert_eq!(
            ops,
            vec![
                DiffOp::Delete { a_pos: 0, len: 200 },
                DiffOp::Insert {
                    a_pos: 200,
                    b_pos: 0,
                    len: 200
                },
            ]
        );
        assert_eq!(apply_diff(&a, &b, &ops), b);
    }

    #[test]
    fn line_tokens_work_like_any_tokens() {
        let a = ["a", "b", "c", "d"];
        let b = ["a", "x", "c", "d", "e"];
        let ops = diff_slices(&a, &b);
        assert_eq!(apply_diff(&a, &b, &ops), b);
        assert_eq!(edit_distance(&ops), 3); // -b +x +e
    }

    #[test]
    fn affix_stripping_yields_minimal_anchored_scripts() {
        // A one-token edit inside a large shared prefix/suffix: the
        // script must still be minimal and anchored to full-input
        // positions (the search itself only ever sees the tiny middle).
        let mut a: Vec<u32> = (0..10_000).collect();
        let mut b = a.clone();
        b[5_000] = 999_999;
        let ops = diff_slices(&a, &b);
        assert_eq!(edit_distance(&ops), 2); // one delete + one insert
        assert_eq!(apply_diff(&a, &b, &ops), b);
        assert!(matches!(
            ops[0],
            DiffOp::Equal {
                a_pos: 0,
                b_pos: 0,
                len: 5_000
            }
        ));
        assert!(matches!(ops.last(), Some(DiffOp::Equal { len: 4_999, .. })));
        // Prefix-only and suffix-only overlaps.
        a.truncate(6_000);
        let prefix_ops = diff_slices(&a, &{
            let mut c = a.clone();
            c.extend(0..5u32);
            c
        });
        assert_eq!(edit_distance(&prefix_ops), 5);
        let suffix_ops = diff_slices(&a[3..], &a);
        assert_eq!(edit_distance(&suffix_ops), 3);
    }

    #[test]
    fn bounded_fallback_keeps_common_affixes() {
        // Shared prefix and suffix around a reversed (undiffable under
        // the bound) middle: the fallback replaces only the middle.
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.splice(25..25, 1000..1200);
        b.splice(25..25, (1000..1200).rev());
        let ops = diff_slices_bounded(&a, &b, 3);
        assert_eq!(apply_diff(&a, &b, &ops), b);
        assert!(matches!(
            ops.first(),
            Some(DiffOp::Equal {
                a_pos: 0,
                b_pos: 0,
                len: 25
            })
        ));
        assert!(matches!(ops.last(), Some(DiffOp::Equal { len: 25, .. })));
        assert!(matches!(
            ops[1],
            DiffOp::Delete {
                a_pos: 25,
                len: 200
            }
        ));
    }

    #[test]
    fn works_on_large_similar_inputs() {
        let a: Vec<u32> = (0..5000).collect();
        let mut bv: Vec<u32> = a.clone();
        bv.remove(1234);
        bv.insert(4000, 999_999);
        let ops = diff_slices(&a, &bv);
        assert_eq!(apply_diff(&a, &bv, &ops), bv);
        assert_eq!(edit_distance(&ops), 2);
    }
}
