//! Myers' O(ND) difference algorithm over generic token slices.
//!
//! This is the algorithm underlying UNIX `diff`, which the paper uses to
//! compute deltas for its synthetic datasets ("we use deltas based on
//! UNIX-style diffs", §5.1). It finds a shortest edit script between two
//! sequences; [`crate::script`] lifts it to line-level deltas and
//! [`crate::bytes_delta`] provides the byte-level analogue.
//!
//! For very distant inputs the full O(ND) search would cost O((N+M)²); a
//! configurable bound caps the search and falls back to a trivial
//! replace-everything script, which is always correct and only costs
//! optimality (the paper likewise only reveals deltas between nearby
//! versions).

/// One hunk of a diff between sequences `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOp {
    /// `len` tokens equal: `a[a_pos..a_pos+len] == b[b_pos..b_pos+len]`.
    Equal {
        /// Start in `a`.
        a_pos: usize,
        /// Start in `b`.
        b_pos: usize,
        /// Run length.
        len: usize,
    },
    /// `len` tokens of `a` deleted, starting at `a_pos`.
    Delete {
        /// Start in `a`.
        a_pos: usize,
        /// Run length.
        len: usize,
    },
    /// `len` tokens of `b` inserted (after position `a_pos` of `a`).
    Insert {
        /// Position in `a` the insertion happens at.
        a_pos: usize,
        /// Start in `b`.
        b_pos: usize,
        /// Run length.
        len: usize,
    },
}

/// Elementary backtracked moves before coalescing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Move {
    Keep,
    Del,
    Ins,
}

/// Computes a shortest edit script between `a` and `b` with the default
/// search bound (`1024 + (n+m)/4` edit steps).
pub fn diff_slices<T: PartialEq>(a: &[T], b: &[T]) -> Vec<DiffOp> {
    let bound = 1024 + (a.len() + b.len()) / 4;
    diff_slices_bounded(a, b, bound)
}

/// Computes an edit script between `a` and `b`, searching at most `max_d`
/// edit steps; if the optimal distance exceeds `max_d`, returns the trivial
/// delete-all/insert-all script.
pub fn diff_slices_bounded<T: PartialEq>(a: &[T], b: &[T], max_d: usize) -> Vec<DiffOp> {
    let n = a.len();
    let m = b.len();
    if n == 0 && m == 0 {
        return Vec::new();
    }
    if n == 0 {
        return vec![DiffOp::Insert {
            a_pos: 0,
            b_pos: 0,
            len: m,
        }];
    }
    if m == 0 {
        return vec![DiffOp::Delete { a_pos: 0, len: n }];
    }

    match shortest_edit_trace(a, b, max_d) {
        Some((d_final, trace)) => {
            let moves = backtrack(a, b, d_final, &trace);
            coalesce(&moves)
        }
        None => vec![
            DiffOp::Delete { a_pos: 0, len: n },
            DiffOp::Insert {
                a_pos: n,
                b_pos: 0,
                len: m,
            },
        ],
    }
}

/// The number of edit operations (inserts + deletes) in a script.
pub fn edit_distance(ops: &[DiffOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            DiffOp::Equal { .. } => 0,
            DiffOp::Delete { len, .. } | DiffOp::Insert { len, .. } => *len,
        })
        .sum()
}

/// Forward phase: returns (d, per-round V snapshots) or None if `max_d`
/// was exceeded.
fn shortest_edit_trace<T: PartialEq>(
    a: &[T],
    b: &[T],
    max_d: usize,
) -> Option<(usize, Vec<Vec<isize>>)> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max = (n + m) as usize;
    let limit = max.min(max_d);
    let offset = max as isize;
    let mut v = vec![0isize; 2 * max + 1];
    let mut trace: Vec<Vec<isize>> = Vec::new();

    for d in 0..=(limit as isize) {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                return Some((d as usize, trace));
            }
            k += 2;
        }
    }
    None
}

/// Backward phase: reconstruct the move sequence from the trace.
fn backtrack<T: PartialEq>(a: &[T], b: &[T], d_final: usize, trace: &[Vec<isize>]) -> Vec<Move> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let offset = n + m;
    let mut moves_rev: Vec<Move> = Vec::new();
    let mut x = n;
    let mut y = m;

    for d in (1..=d_final as isize).rev() {
        let v = &trace[d as usize];
        let k = x - y;
        let prev_k =
            if k == -d || (k != d && v[(k - 1 + offset) as usize] < v[(k + 1 + offset) as usize]) {
                k + 1
            } else {
                k - 1
            };
        let prev_x = v[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;
        // Diagonal snake back to the point just after the edit.
        while x > prev_x && y > prev_y {
            moves_rev.push(Move::Keep);
            x -= 1;
            y -= 1;
        }
        if x == prev_x {
            moves_rev.push(Move::Ins); // consumed one token of b
        } else {
            moves_rev.push(Move::Del); // consumed one token of a
        }
        x = prev_x;
        y = prev_y;
    }
    // Leading diagonal at d = 0.
    while x > 0 && y > 0 {
        moves_rev.push(Move::Keep);
        x -= 1;
        y -= 1;
    }
    moves_rev.reverse();
    moves_rev
}

/// Groups elementary moves into run-length [`DiffOp`]s, tracking positions.
fn coalesce(moves: &[Move]) -> Vec<DiffOp> {
    let mut ops = Vec::new();
    let mut a_pos = 0usize;
    let mut b_pos = 0usize;
    let mut i = 0usize;
    while i < moves.len() {
        let kind = moves[i];
        let mut len = 0usize;
        while i < moves.len() && moves[i] == kind {
            len += 1;
            i += 1;
        }
        match kind {
            Move::Keep => {
                ops.push(DiffOp::Equal { a_pos, b_pos, len });
                a_pos += len;
                b_pos += len;
            }
            Move::Del => {
                ops.push(DiffOp::Delete { a_pos, len });
                a_pos += len;
            }
            Move::Ins => {
                ops.push(DiffOp::Insert { a_pos, b_pos, len });
                b_pos += len;
            }
        }
    }
    ops
}

/// Applies a diff to `a`, reconstructing `b`. Primarily a testing aid; the
/// production apply paths live in [`crate::script`] / [`crate::bytes_delta`].
pub fn apply_diff<T: Clone>(a: &[T], b_tokens: &[T], ops: &[DiffOp]) -> Vec<T> {
    let mut out = Vec::new();
    for op in ops {
        match *op {
            DiffOp::Equal { a_pos, len, .. } => out.extend_from_slice(&a[a_pos..a_pos + len]),
            DiffOp::Delete { .. } => {}
            DiffOp::Insert { b_pos, len, .. } => {
                out.extend_from_slice(&b_tokens[b_pos..b_pos + len])
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &str, b: &str) -> Vec<DiffOp> {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let ops = diff_slices(&av, &bv);
        let rebuilt: String = apply_diff(&av, &bv, &ops).into_iter().collect();
        assert_eq!(rebuilt, b, "diff {a:?} -> {b:?} must reconstruct");
        ops
    }

    #[test]
    fn identical_inputs_yield_single_equal() {
        let ops = check("abcdef", "abcdef");
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], DiffOp::Equal { len: 6, .. }));
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA -> CBABAC has edit distance 5 (Myers' paper example).
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        let ops = diff_slices(&a, &b);
        assert_eq!(edit_distance(&ops), 5);
        assert_eq!(
            apply_diff(&a, &b, &ops).into_iter().collect::<String>(),
            "CBABAC"
        );
    }

    #[test]
    fn empty_to_nonempty() {
        let ops = check("", "xyz");
        assert_eq!(
            ops,
            vec![DiffOp::Insert {
                a_pos: 0,
                b_pos: 0,
                len: 3
            }]
        );
    }

    #[test]
    fn nonempty_to_empty() {
        let ops = check("xyz", "");
        assert_eq!(ops, vec![DiffOp::Delete { a_pos: 0, len: 3 }]);
    }

    #[test]
    fn both_empty() {
        assert!(check("", "").is_empty());
    }

    #[test]
    fn single_insertion_in_middle() {
        let ops = check("hello world", "hello brave world");
        assert_eq!(edit_distance(&ops), 6); // "brave " inserted
    }

    #[test]
    fn deletion_is_asymmetric_in_size() {
        // Deleting a block yields a small script; the reverse direction
        // must carry the block. This is the paper's asymmetry example.
        let big = "x".repeat(100);
        let a: Vec<char> = format!("head{big}tail").chars().collect();
        let b: Vec<char> = "headtail".chars().collect();
        let fwd = diff_slices(&a, &b);
        let rev = diff_slices(&b, &a);
        let fwd_inserted: usize = fwd
            .iter()
            .filter_map(|o| match o {
                DiffOp::Insert { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        let rev_inserted: usize = rev
            .iter()
            .filter_map(|o| match o {
                DiffOp::Insert { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(fwd_inserted, 0);
        assert_eq!(rev_inserted, 100);
    }

    #[test]
    fn bounded_search_falls_back_to_replace() {
        let a: Vec<u8> = (0..200u8).collect();
        let b: Vec<u8> = (0..200u8).rev().collect();
        let ops = diff_slices_bounded(&a, &b, 3);
        assert_eq!(
            ops,
            vec![
                DiffOp::Delete { a_pos: 0, len: 200 },
                DiffOp::Insert {
                    a_pos: 200,
                    b_pos: 0,
                    len: 200
                },
            ]
        );
        assert_eq!(apply_diff(&a, &b, &ops), b);
    }

    #[test]
    fn line_tokens_work_like_any_tokens() {
        let a = ["a", "b", "c", "d"];
        let b = ["a", "x", "c", "d", "e"];
        let ops = diff_slices(&a, &b);
        assert_eq!(apply_diff(&a, &b, &ops), b);
        assert_eq!(edit_distance(&ops), 3); // -b +x +e
    }

    #[test]
    fn works_on_large_similar_inputs() {
        let a: Vec<u32> = (0..5000).collect();
        let mut bv: Vec<u32> = a.clone();
        bv.remove(1234);
        bv.insert(4000, 999_999);
        let ops = diff_slices(&a, &bv);
        assert_eq!(apply_diff(&a, &bv, &ops), bv);
        assert_eq!(edit_distance(&ops), 2);
    }
}
