//! XOR deltas — the paper's canonical *symmetric* differencing mechanism.
//!
//! "For some types of data, an XOR between the two versions can be an
//! appropriate delta" (§2.1), and because `a ⊕ (a ⊕ b) = b` the same delta
//! recreates either version from the other: `Δ_ij = Δ_ji`, which is what
//! makes the *undirected case* of the problem arise. The payload is stored
//! LZ-compressed, since XORs of similar versions are mostly zero bytes.

use dsv_compress::lz;
use dsv_compress::varint::{decode_u64, encode_u64};

/// A symmetric delta between two byte strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorDelta {
    /// Length of the first version.
    len_a: u64,
    /// Length of the second version.
    len_b: u64,
    /// `a[i] ^ b[i]` padded with the longer tail (zero-extended shorter
    /// input), length = max(len_a, len_b).
    payload: Vec<u8>,
}

/// Errors applying an [`XorDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XorError {
    /// The input did not match either recorded version length.
    LengthMismatch,
    /// The encoded form was malformed.
    Malformed,
}

impl std::fmt::Display for XorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XorError::LengthMismatch => write!(f, "input length matches neither version"),
            XorError::Malformed => write!(f, "malformed xor delta"),
        }
    }
}

impl std::error::Error for XorError {}

impl XorDelta {
    /// Builds the symmetric delta between `a` and `b`.
    pub fn between(a: &[u8], b: &[u8]) -> Self {
        let n = a.len().max(b.len());
        let mut payload = vec![0u8; n];
        for (i, slot) in payload.iter_mut().enumerate() {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            *slot = x ^ y;
        }
        XorDelta {
            len_a: a.len() as u64,
            len_b: b.len() as u64,
            payload,
        }
    }

    /// Applies the delta to one version, producing the other.
    ///
    /// The direction is inferred from the input length; deltas between
    /// equal-length versions are direction-agnostic (XOR is an involution).
    pub fn apply(&self, input: &[u8]) -> Result<Vec<u8>, XorError> {
        let out_len = if input.len() as u64 == self.len_a {
            self.len_b
        } else if input.len() as u64 == self.len_b {
            self.len_a
        } else {
            return Err(XorError::LengthMismatch);
        } as usize;
        let mut out = vec![0u8; out_len];
        for (i, slot) in out.iter_mut().enumerate() {
            let x = input.get(i).copied().unwrap_or(0);
            *slot = x ^ self.payload.get(i).copied().unwrap_or(0);
        }
        Ok(out)
    }

    /// Serialized form: `varint len_a, varint len_b, lz(payload)`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_u64(self.len_a, &mut out);
        encode_u64(self.len_b, &mut out);
        out.extend_from_slice(&lz::compress(&self.payload));
        out
    }

    /// Parses a delta produced by [`encode`](Self::encode).
    pub fn decode(input: &[u8]) -> Result<Self, XorError> {
        let (len_a, u1) = decode_u64(input).ok_or(XorError::Malformed)?;
        let (len_b, u2) = decode_u64(&input[u1..]).ok_or(XorError::Malformed)?;
        let payload = lz::decompress(&input[u1 + u2..]).map_err(|_| XorError::Malformed)?;
        if payload.len() as u64 != len_a.max(len_b) {
            return Err(XorError::Malformed);
        }
        Ok(XorDelta {
            len_a,
            len_b,
            payload,
        })
    }

    /// Encoded size in bytes: the symmetric storage cost `Δ_ij = Δ_ji`.
    pub fn encoded_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_application() {
        let a = b"the quick brown fox jumps over the lazy dog".to_vec();
        let mut b = a.clone();
        b[4] = b'Q';
        b.extend_from_slice(b" -- appended");
        let d = XorDelta::between(&a, &b);
        assert_eq!(d.apply(&a).unwrap(), b);
        assert_eq!(d.apply(&b).unwrap(), a);
    }

    #[test]
    fn delta_is_direction_independent() {
        let a = b"aaaa".to_vec();
        let b = b"aaab".to_vec();
        assert_eq!(XorDelta::between(&a, &b), XorDelta::between(&b, &a));
    }

    #[test]
    fn similar_versions_compress_well() {
        let a: Vec<u8> = (0..10_000u32)
            .flat_map(|i| format!("r{i}\n").into_bytes())
            .collect();
        let mut b = a.clone();
        b[5000] ^= 0xff;
        let d = XorDelta::between(&a, &b);
        assert!(
            d.encoded_size() < 200,
            "sparse xor should compress, got {}",
            d.encoded_size()
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = b"version one content".to_vec();
        let b = b"version two content, longer".to_vec();
        let d = XorDelta::between(&a, &b);
        let d2 = XorDelta::decode(&d.encode()).unwrap();
        assert_eq!(d, d2);
        assert_eq!(d2.apply(&a).unwrap(), b);
    }

    #[test]
    fn wrong_length_input_rejected() {
        let d = XorDelta::between(b"12345", b"1234567");
        assert_eq!(d.apply(b"1234"), Err(XorError::LengthMismatch));
    }

    #[test]
    fn equal_length_versions_roundtrip_both_ways() {
        let a = b"AAAABBBB".to_vec();
        let b = b"AAAACCCC".to_vec();
        let d = XorDelta::between(&a, &b);
        // Same length: apply maps a->b and b->a correctly (involution).
        assert_eq!(d.apply(&a).unwrap(), b);
        assert_eq!(d.apply(&b).unwrap(), a);
    }

    #[test]
    fn empty_versions() {
        let d = XorDelta::between(b"", b"hello");
        assert_eq!(d.apply(b"").unwrap(), b"hello");
        assert_eq!(d.apply(b"hello").unwrap(), b"");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(XorDelta::decode(&[0xff, 0xff]).is_err());
        assert!(XorDelta::decode(&[]).is_err());
    }
}
