//! Resemblance sketches for choosing which `Δ`/`Φ` entries to reveal.
//!
//! Computing all-pairs deltas is infeasible for large version collections;
//! the paper points to resemblance-detection techniques (Douglis &
//! Iyengar, its ref. 19) as a way to find promising version pairs beyond
//! neighbours. This module implements the standard bottom-k sketch over
//! byte shingles: the estimated Jaccard resemblance of two versions is the
//! overlap of their k smallest shingle hashes.

const SHINGLE: usize = 12;

/// A bottom-k sketch of a byte string's shingle set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResemblanceSketch {
    /// The k smallest distinct shingle hashes, sorted ascending.
    hashes: Vec<u64>,
    /// Configured sketch size.
    k: usize,
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ResemblanceSketch {
    /// Builds a bottom-`k` sketch of `data`.
    pub fn build(data: &[u8], k: usize) -> Self {
        assert!(k > 0, "sketch size must be positive");
        if data.len() < SHINGLE {
            // Degenerate: hash the whole input as one shingle.
            return ResemblanceSketch {
                hashes: vec![fnv1a(data)],
                k,
            };
        }
        // Collect distinct shingle hashes, keep the k smallest via a
        // bounded max-heap emulation over a sorted vec (k is small).
        let mut smallest: Vec<u64> = Vec::with_capacity(k + 1);
        for w in data.windows(SHINGLE) {
            let h = fnv1a(w);
            match smallest.binary_search(&h) {
                Ok(_) => continue, // duplicate
                Err(idx) => {
                    if idx < k {
                        smallest.insert(idx, h);
                        smallest.truncate(k);
                    }
                }
            }
        }
        ResemblanceSketch {
            hashes: smallest,
            k,
        }
    }

    /// Estimated Jaccard resemblance in `[0, 1]` between the sketched sets.
    ///
    /// Uses the standard bottom-k estimator: among the k smallest hashes of
    /// the union, count how many appear in both sketches.
    pub fn resemblance(&self, other: &ResemblanceSketch) -> f64 {
        let k = self.k.min(other.k);
        // Merge the two sorted lists, take the k smallest of the union,
        // counting values present in both.
        let (mut i, mut j) = (0usize, 0usize);
        let mut taken = 0usize;
        let mut both = 0usize;
        while taken < k && (i < self.hashes.len() || j < other.hashes.len()) {
            let a = self.hashes.get(i).copied();
            let b = other.hashes.get(j).copied();
            match (a, b) {
                (Some(x), Some(y)) if x == y => {
                    both += 1;
                    i += 1;
                    j += 1;
                }
                (Some(x), Some(y)) if x < y => i += 1,
                (Some(_), Some(_)) => j += 1,
                (Some(_), None) => i += 1,
                (None, Some(_)) => j += 1,
                (None, None) => break,
            }
            taken += 1;
        }
        if taken == 0 {
            return 0.0;
        }
        both as f64 / taken as f64
    }
}

/// Returns candidate pairs `(i, j)` (`i < j`) whose estimated resemblance
/// is at least `threshold`. Quadratic in the number of versions but only
/// over cheap sketches — this is the "reveal strategy" helper used when no
/// version graph is available (the paper's fork datasets).
pub fn similar_pairs(sketches: &[ResemblanceSketch], threshold: f64) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..sketches.len() {
        for j in (i + 1)..sketches.len() {
            if sketches[i].resemblance(&sketches[j]) >= threshold {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A document whose every line depends on the seed, so different seeds
    /// share essentially no shingles.
    fn doc(seed: u64, rows: usize) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut out = Vec::new();
        for i in 0..rows {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.extend_from_slice(format!("{state:016x}:{i}\n").as_bytes());
        }
        out
    }

    #[test]
    fn identical_inputs_have_resemblance_one() {
        let a = doc(1, 200);
        let s1 = ResemblanceSketch::build(&a, 64);
        let s2 = ResemblanceSketch::build(&a, 64);
        assert!((s1.resemblance(&s2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_inputs_have_low_resemblance() {
        let a = doc(1, 200);
        let b = doc(999, 200);
        let s1 = ResemblanceSketch::build(&a, 64);
        let s2 = ResemblanceSketch::build(&b, 64);
        assert!(s1.resemblance(&s2) < 0.2);
    }

    #[test]
    fn small_edit_keeps_high_resemblance() {
        let a = doc(1, 500);
        let mut b = a.clone();
        let mid = b.len() / 2;
        b[mid] = b'@';
        let s1 = ResemblanceSketch::build(&a, 128);
        let s2 = ResemblanceSketch::build(&b, 128);
        assert!(s1.resemblance(&s2) > 0.8, "got {}", s1.resemblance(&s2));
    }

    #[test]
    fn tiny_inputs_degenerate_gracefully() {
        let s1 = ResemblanceSketch::build(b"abc", 16);
        let s2 = ResemblanceSketch::build(b"abc", 16);
        let s3 = ResemblanceSketch::build(b"xyz", 16);
        assert!(s1.resemblance(&s2) > 0.99);
        assert!(s1.resemblance(&s3) < 0.01);
    }

    #[test]
    fn similar_pairs_finds_the_clone() {
        let base = doc(7, 300);
        let mut edited = base.clone();
        edited.extend_from_slice(b"one extra line\n");
        let other = doc(8, 300);
        let sketches = vec![
            ResemblanceSketch::build(&base, 64),
            ResemblanceSketch::build(&edited, 64),
            ResemblanceSketch::build(&other, 64),
        ];
        let pairs = similar_pairs(&sketches, 0.5);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        ResemblanceSketch::build(b"data", 0);
    }
}
