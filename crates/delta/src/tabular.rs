//! Cell-level deltas for tabular (CSV-like) data.
//!
//! "For tabular data (e.g., relational tables), recording the differences
//! at the cell level is yet another type of delta" (§2.1). The paper's
//! synthetic datasets are ordered CSV files mutated by six edit commands —
//! add/delete consecutive rows, add/remove a column, modify a subset of
//! rows/columns. [`TableDelta`] represents exactly those commands, so the
//! workload generator can both *produce* version contents and *know* the
//! precise delta between adjacent versions.

use dsv_compress::varint::{decode_u64, encode_u64};

/// An in-memory ordered table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; every row has `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

/// Errors applying a [`TableDelta`] or parsing a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Row/column index out of range for the table being edited.
    OutOfRange,
    /// A row had the wrong number of cells.
    Ragged,
    /// Malformed serialized form.
    Malformed,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::OutOfRange => write!(f, "row/column index out of range"),
            TableError::Ragged => write!(f, "row arity does not match columns"),
            TableError::Malformed => write!(f, "malformed table encoding"),
        }
    }
}

impl std::error::Error for TableError {}

impl Table {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    /// Returns [`TableError::Ragged`] on arity mismatch.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<(), TableError> {
        if row.len() != self.columns.len() {
            return Err(TableError::Ragged);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Serializes to CSV bytes (no quoting: generator cells never contain
    /// commas or newlines; asserted in debug builds).
    pub fn to_csv(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let write_row = |cells: &[String], out: &mut Vec<u8>| {
            for (i, c) in cells.iter().enumerate() {
                debug_assert!(
                    !c.contains(',') && !c.contains('\n'),
                    "cells must be comma/newline free"
                );
                if i > 0 {
                    out.push(b',');
                }
                out.extend_from_slice(c.as_bytes());
            }
            out.push(b'\n');
        };
        write_row(&self.columns, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Parses CSV bytes produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(data: &[u8]) -> Result<Self, TableError> {
        let text = std::str::from_utf8(data).map_err(|_| TableError::Malformed)?;
        let mut lines = text.lines();
        let header = lines.next().ok_or(TableError::Malformed)?;
        let columns: Vec<String> = header.split(',').map(str::to_owned).collect();
        let mut rows = Vec::new();
        for line in lines {
            let row: Vec<String> = line.split(',').map(str::to_owned).collect();
            if row.len() != columns.len() {
                return Err(TableError::Ragged);
            }
            rows.push(row);
        }
        Ok(Table { columns, rows })
    }

    /// Total bytes of the CSV serialization (a table's materialized size).
    pub fn byte_size(&self) -> usize {
        self.to_csv().len()
    }
}

/// One of the paper's six edit commands (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableEdit {
    /// Insert `rows` starting at row index `at`.
    AddRows {
        /// Insertion index (`<= rows.len()` of the table).
        at: u32,
        /// Rows to insert.
        rows: Vec<Vec<String>>,
    },
    /// Delete `count` consecutive rows starting at `at`.
    DeleteRows {
        /// First deleted row.
        at: u32,
        /// Number of rows deleted.
        count: u32,
    },
    /// Insert a column at position `at` with the given name and values
    /// (one per existing row).
    AddColumn {
        /// Insertion position in the column list.
        at: u32,
        /// New column name.
        name: String,
        /// One value per row.
        values: Vec<String>,
    },
    /// Remove the column at position `at`; the removed cells are recorded
    /// nowhere (the delta is directional).
    RemoveColumn {
        /// Column index.
        at: u32,
    },
    /// Overwrite individual cells.
    ModifyCells {
        /// `(row, column, new_value)` triples.
        cells: Vec<(u32, u32, String)>,
    },
}

/// A directional cell-level delta: a sequence of [`TableEdit`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableDelta {
    /// Edits applied in order.
    pub edits: Vec<TableEdit>,
}

impl TableDelta {
    /// Applies the edits to `table`, producing the target version.
    pub fn apply(&self, table: &Table) -> Result<Table, TableError> {
        let mut t = table.clone();
        for edit in &self.edits {
            match edit {
                TableEdit::AddRows { at, rows } => {
                    let at = *at as usize;
                    if at > t.rows.len() {
                        return Err(TableError::OutOfRange);
                    }
                    for r in rows {
                        if r.len() != t.columns.len() {
                            return Err(TableError::Ragged);
                        }
                    }
                    t.rows.splice(at..at, rows.iter().cloned());
                }
                TableEdit::DeleteRows { at, count } => {
                    let at = *at as usize;
                    let end = at + *count as usize;
                    if end > t.rows.len() {
                        return Err(TableError::OutOfRange);
                    }
                    t.rows.drain(at..end);
                }
                TableEdit::AddColumn { at, name, values } => {
                    let at = *at as usize;
                    if at > t.columns.len() || values.len() != t.rows.len() {
                        return Err(TableError::OutOfRange);
                    }
                    t.columns.insert(at, name.clone());
                    for (row, v) in t.rows.iter_mut().zip(values) {
                        row.insert(at, v.clone());
                    }
                }
                TableEdit::RemoveColumn { at } => {
                    let at = *at as usize;
                    if at >= t.columns.len() {
                        return Err(TableError::OutOfRange);
                    }
                    t.columns.remove(at);
                    for row in &mut t.rows {
                        row.remove(at);
                    }
                }
                TableEdit::ModifyCells { cells } => {
                    for (r, c, v) in cells {
                        let (r, c) = (*r as usize, *c as usize);
                        if r >= t.rows.len() || c >= t.columns.len() {
                            return Err(TableError::OutOfRange);
                        }
                        t.rows[r][c] = v.clone();
                    }
                }
            }
        }
        Ok(t)
    }

    /// Serialized size in bytes — the cell-level storage cost `Δ`.
    pub fn encoded_size(&self) -> usize {
        self.encode().len()
    }

    /// Compact binary encoding (varint-tagged).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_u64(self.edits.len() as u64, &mut out);
        let put_str = |s: &str, out: &mut Vec<u8>| {
            encode_u64(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        };
        for e in &self.edits {
            match e {
                TableEdit::AddRows { at, rows } => {
                    encode_u64(0, &mut out);
                    encode_u64(u64::from(*at), &mut out);
                    encode_u64(rows.len() as u64, &mut out);
                    for row in rows {
                        encode_u64(row.len() as u64, &mut out);
                        for c in row {
                            put_str(c, &mut out);
                        }
                    }
                }
                TableEdit::DeleteRows { at, count } => {
                    encode_u64(1, &mut out);
                    encode_u64(u64::from(*at), &mut out);
                    encode_u64(u64::from(*count), &mut out);
                }
                TableEdit::AddColumn { at, name, values } => {
                    encode_u64(2, &mut out);
                    encode_u64(u64::from(*at), &mut out);
                    put_str(name, &mut out);
                    encode_u64(values.len() as u64, &mut out);
                    for v in values {
                        put_str(v, &mut out);
                    }
                }
                TableEdit::RemoveColumn { at } => {
                    encode_u64(3, &mut out);
                    encode_u64(u64::from(*at), &mut out);
                }
                TableEdit::ModifyCells { cells } => {
                    encode_u64(4, &mut out);
                    encode_u64(cells.len() as u64, &mut out);
                    for (r, c, v) in cells {
                        encode_u64(u64::from(*r), &mut out);
                        encode_u64(u64::from(*c), &mut out);
                        put_str(v, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Parses an encoding produced by [`encode`](Self::encode).
    pub fn decode(input: &[u8]) -> Result<Self, TableError> {
        let mut pos = 0usize;
        let get = |input: &[u8], pos: &mut usize| -> Result<u64, TableError> {
            let (v, used) = decode_u64(&input[*pos..]).ok_or(TableError::Malformed)?;
            *pos += used;
            Ok(v)
        };
        let get_str = |input: &[u8], pos: &mut usize| -> Result<String, TableError> {
            let (len, used) = decode_u64(&input[*pos..]).ok_or(TableError::Malformed)?;
            *pos += used;
            let len = len as usize;
            if *pos + len > input.len() {
                return Err(TableError::Malformed);
            }
            let s = std::str::from_utf8(&input[*pos..*pos + len])
                .map_err(|_| TableError::Malformed)?
                .to_owned();
            *pos += len;
            Ok(s)
        };
        let count = get(input, &mut pos)?;
        let mut edits = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tag = get(input, &mut pos)?;
            edits.push(match tag {
                0 => {
                    let at = get(input, &mut pos)? as u32;
                    let nrows = get(input, &mut pos)?;
                    let mut rows = Vec::with_capacity(nrows as usize);
                    for _ in 0..nrows {
                        let ncells = get(input, &mut pos)?;
                        let mut row = Vec::with_capacity(ncells as usize);
                        for _ in 0..ncells {
                            row.push(get_str(input, &mut pos)?);
                        }
                        rows.push(row);
                    }
                    TableEdit::AddRows { at, rows }
                }
                1 => TableEdit::DeleteRows {
                    at: get(input, &mut pos)? as u32,
                    count: get(input, &mut pos)? as u32,
                },
                2 => {
                    let at = get(input, &mut pos)? as u32;
                    let name = get_str(input, &mut pos)?;
                    let nvals = get(input, &mut pos)?;
                    let mut values = Vec::with_capacity(nvals as usize);
                    for _ in 0..nvals {
                        values.push(get_str(input, &mut pos)?);
                    }
                    TableEdit::AddColumn { at, name, values }
                }
                3 => TableEdit::RemoveColumn {
                    at: get(input, &mut pos)? as u32,
                },
                4 => {
                    let ncells = get(input, &mut pos)?;
                    let mut cells = Vec::with_capacity(ncells as usize);
                    for _ in 0..ncells {
                        let r = get(input, &mut pos)? as u32;
                        let c = get(input, &mut pos)? as u32;
                        cells.push((r, c, get_str(input, &mut pos)?));
                    }
                    TableEdit::ModifyCells { cells }
                }
                _ => return Err(TableError::Malformed),
            });
        }
        Ok(TableDelta { edits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["id".into(), "name".into(), "age".into()]);
        for i in 0..5 {
            t.push_row(vec![
                i.to_string(),
                format!("user{i}"),
                (20 + i).to_string(),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let csv = t.to_csv();
        let t2 = Table::from_csv(&csv).unwrap();
        assert_eq!(t, t2);
        assert_eq!(t.byte_size(), csv.len());
    }

    #[test]
    fn add_and_delete_rows() {
        let t = sample();
        let d = TableDelta {
            edits: vec![
                TableEdit::AddRows {
                    at: 2,
                    rows: vec![vec!["99".into(), "new".into(), "50".into()]],
                },
                TableEdit::DeleteRows { at: 0, count: 1 },
            ],
        };
        let t2 = d.apply(&t).unwrap();
        assert_eq!(t2.rows.len(), 5);
        assert_eq!(t2.rows[1][1], "new");
    }

    #[test]
    fn add_and_remove_column() {
        let t = sample();
        let d = TableDelta {
            edits: vec![
                TableEdit::AddColumn {
                    at: 1,
                    name: "email".into(),
                    values: (0..5).map(|i| format!("u{i}@x.org")).collect(),
                },
                TableEdit::RemoveColumn { at: 3 },
            ],
        };
        let t2 = d.apply(&t).unwrap();
        assert_eq!(t2.columns, vec!["id", "email", "name"]);
        assert_eq!(t2.rows[0], vec!["0", "u0@x.org", "user0"]);
    }

    #[test]
    fn modify_cells() {
        let t = sample();
        let d = TableDelta {
            edits: vec![TableEdit::ModifyCells {
                cells: vec![(0, 2, "99".into()), (4, 1, "renamed".into())],
            }],
        };
        let t2 = d.apply(&t).unwrap();
        assert_eq!(t2.rows[0][2], "99");
        assert_eq!(t2.rows[4][1], "renamed");
    }

    #[test]
    fn out_of_range_edits_rejected() {
        let t = sample();
        assert_eq!(
            TableDelta {
                edits: vec![TableEdit::DeleteRows { at: 4, count: 5 }]
            }
            .apply(&t),
            Err(TableError::OutOfRange)
        );
        assert_eq!(
            TableDelta {
                edits: vec![TableEdit::RemoveColumn { at: 9 }]
            }
            .apply(&t),
            Err(TableError::OutOfRange)
        );
        assert_eq!(
            TableDelta {
                edits: vec![TableEdit::ModifyCells {
                    cells: vec![(9, 0, "x".into())]
                }]
            }
            .apply(&t),
            Err(TableError::OutOfRange)
        );
    }

    #[test]
    fn ragged_rows_rejected() {
        let t = sample();
        assert_eq!(
            TableDelta {
                edits: vec![TableEdit::AddRows {
                    at: 0,
                    rows: vec![vec!["only-one-cell".into()]]
                }]
            }
            .apply(&t),
            Err(TableError::Ragged)
        );
        let mut t2 = Table::new(vec!["a".into()]);
        assert_eq!(
            t2.push_row(vec!["1".into(), "2".into()]),
            Err(TableError::Ragged)
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = TableDelta {
            edits: vec![
                TableEdit::AddRows {
                    at: 1,
                    rows: vec![vec!["a".into(), "b".into()]],
                },
                TableEdit::DeleteRows { at: 0, count: 2 },
                TableEdit::AddColumn {
                    at: 0,
                    name: "k".into(),
                    values: vec!["v".into()],
                },
                TableEdit::RemoveColumn { at: 1 },
                TableEdit::ModifyCells {
                    cells: vec![(1, 0, "z".into())],
                },
            ],
        };
        let d2 = TableDelta::decode(&d.encode()).unwrap();
        assert_eq!(d, d2);
        assert_eq!(d.encoded_size(), d.encode().len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TableDelta::decode(&[9, 9, 9]).is_err());
    }

    #[test]
    fn delete_delta_smaller_than_its_inverse_information() {
        // A "delete rows" delta is tiny even when many rows vanish — the
        // asymmetry motivating the directed case.
        let mut t = Table::new(vec!["c".into()]);
        for i in 0..1000 {
            t.push_row(vec![format!("row-{i}")]).unwrap();
        }
        let d = TableDelta {
            edits: vec![TableEdit::DeleteRows { at: 0, count: 900 }],
        };
        let t2 = d.apply(&t).unwrap();
        assert_eq!(t2.rows.len(), 100);
        assert!(d.encoded_size() < 16);
        assert!(t.byte_size() - t2.byte_size() > 5000);
    }
}
