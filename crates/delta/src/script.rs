//! Line-level edit scripts: the "UNIX-style diff" delta mechanism.
//!
//! A [`LineScript`] reconstructs a target text from a source text by
//! copying line ranges of the source and inserting new lines — the
//! directional (asymmetric) delta of the paper's §2.1. The encoded size of
//! the script is the storage cost `Δ` of storing the target as a delta;
//! note the inherent asymmetry the paper highlights: a delta that deletes
//! many lines is tiny, its reverse must embed them all.

use crate::myers::{diff_slices, DiffOp};
use dsv_compress::varint::{decode_u64, encode_u64};

/// One instruction of a line script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineOp {
    /// Copy `count` lines from the source starting at `src_line`.
    Copy {
        /// First source line to copy.
        src_line: u32,
        /// Number of lines.
        count: u32,
    },
    /// Insert literal text (one or more complete lines).
    Insert {
        /// The inserted bytes (lines including terminators).
        text: Vec<u8>,
    },
}

/// A directional line-level delta: apply to the source to get the target.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineScript {
    /// Instructions in order.
    pub ops: Vec<LineOp>,
}

/// Errors applying a [`LineScript`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// A copy referenced lines beyond the end of the source.
    CopyOutOfRange,
    /// The encoded form was malformed.
    Malformed,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::CopyOutOfRange => write!(f, "copy range exceeds source"),
            ScriptError::Malformed => write!(f, "malformed line script"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// Splits `text` into lines, each including its trailing `\n` when present.
pub fn split_lines(text: &[u8]) -> Vec<&[u8]> {
    let mut lines = Vec::new();
    let mut start = 0;
    for (i, &b) in text.iter().enumerate() {
        if b == b'\n' {
            lines.push(&text[start..=i]);
            start = i + 1;
        }
    }
    if start < text.len() {
        lines.push(&text[start..]);
    }
    lines
}

/// Computes a [`LineScript`] turning `src` into `dst` via Myers diff on
/// lines.
///
/// Lines are first interned into dense `u32` symbols (shared across both
/// inputs), so the O(ND) search compares integers rather than byte slices
/// — the same trick production diff tools use. Interning is exact (a
/// hash-map on the line content), so equal symbols always mean equal
/// lines.
pub fn line_diff(src: &[u8], dst: &[u8]) -> LineScript {
    let a = split_lines(src);
    let b = split_lines(dst);
    let mut symbols: std::collections::HashMap<&[u8], u32> =
        std::collections::HashMap::with_capacity(a.len() + b.len());
    let mut a_sym: Vec<u32> = Vec::with_capacity(a.len());
    for line in &a {
        let next = symbols.len() as u32;
        a_sym.push(*symbols.entry(line).or_insert(next));
    }
    let mut b_sym: Vec<u32> = Vec::with_capacity(b.len());
    for line in &b {
        let next = symbols.len() as u32;
        b_sym.push(*symbols.entry(line).or_insert(next));
    }
    let diff = diff_slices(&a_sym, &b_sym);
    let mut ops: Vec<LineOp> = Vec::new();
    for op in diff {
        match op {
            DiffOp::Equal { a_pos, len, .. } => {
                // Merge adjacent copies.
                if let Some(LineOp::Copy { src_line, count }) = ops.last_mut() {
                    if *src_line as usize + *count as usize == a_pos {
                        *count += len as u32;
                        continue;
                    }
                }
                ops.push(LineOp::Copy {
                    src_line: a_pos as u32,
                    count: len as u32,
                });
            }
            DiffOp::Delete { .. } => {}
            DiffOp::Insert { b_pos, len, .. } => {
                let mut text = Vec::new();
                for line in &b[b_pos..b_pos + len] {
                    text.extend_from_slice(line);
                }
                if let Some(LineOp::Insert { text: prev }) = ops.last_mut() {
                    prev.extend_from_slice(&text);
                } else {
                    ops.push(LineOp::Insert { text });
                }
            }
        }
    }
    LineScript { ops }
}

impl LineScript {
    /// Applies the script to `src`, producing the target text.
    pub fn apply(&self, src: &[u8]) -> Result<Vec<u8>, ScriptError> {
        let lines = split_lines(src);
        let mut out = Vec::with_capacity(src.len());
        for op in &self.ops {
            match op {
                LineOp::Copy { src_line, count } => {
                    let start = *src_line as usize;
                    let end = start + *count as usize;
                    if end > lines.len() {
                        return Err(ScriptError::CopyOutOfRange);
                    }
                    for line in &lines[start..end] {
                        out.extend_from_slice(line);
                    }
                }
                LineOp::Insert { text } => out.extend_from_slice(text),
            }
        }
        Ok(out)
    }

    /// Serializes the script: `varint op_count`, then per op a tag varint
    /// (`count << 1` for copy, `(len << 1) | 1` for insert) and payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_u64(self.ops.len() as u64, &mut out);
        for op in &self.ops {
            match op {
                LineOp::Copy { src_line, count } => {
                    encode_u64(u64::from(*count) << 1, &mut out);
                    encode_u64(u64::from(*src_line), &mut out);
                }
                LineOp::Insert { text } => {
                    encode_u64(((text.len() as u64) << 1) | 1, &mut out);
                    out.extend_from_slice(text);
                }
            }
        }
        out
    }

    /// Parses a script produced by [`encode`](Self::encode).
    pub fn decode(input: &[u8]) -> Result<Self, ScriptError> {
        let (count, mut pos) = decode_u64(input).ok_or(ScriptError::Malformed)?;
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (tag, used) = decode_u64(&input[pos..]).ok_or(ScriptError::Malformed)?;
            pos += used;
            if tag & 1 == 0 {
                let (src_line, used) = decode_u64(&input[pos..]).ok_or(ScriptError::Malformed)?;
                pos += used;
                ops.push(LineOp::Copy {
                    src_line: src_line as u32,
                    count: (tag >> 1) as u32,
                });
            } else {
                let len = (tag >> 1) as usize;
                if pos + len > input.len() {
                    return Err(ScriptError::Malformed);
                }
                ops.push(LineOp::Insert {
                    text: input[pos..pos + len].to_vec(),
                });
                pos += len;
            }
        }
        Ok(LineScript { ops })
    }

    /// Size in bytes of the encoded script — the delta's storage cost `Δ`
    /// in the uncompressed-diff model.
    pub fn encoded_size(&self) -> usize {
        self.encode().len()
    }

    /// Number of literal bytes the script inserts.
    pub fn inserted_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                LineOp::Insert { text } => text.len(),
                LineOp::Copy { .. } => 0,
            })
            .sum()
    }
}

/// Size of a symmetric ("two-way") line delta between `a` and `b`: the
/// concatenation of both directional scripts, which is how the paper builds
/// undirected deltas for its synthetic datasets (§5.3).
pub fn two_way_size(a: &[u8], b: &[u8]) -> usize {
    line_diff(a, b).encoded_size() + line_diff(b, a).encoded_size()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &[u8] = b"alpha\nbravo\ncharlie\ndelta\necho\n";

    #[test]
    fn split_keeps_terminators() {
        let lines = split_lines(b"a\nb\nc");
        assert_eq!(lines, vec![b"a\n".as_ref(), b"b\n".as_ref(), b"c".as_ref()]);
        assert!(split_lines(b"").is_empty());
    }

    #[test]
    fn roundtrip_modification() {
        let dst = b"alpha\nBRAVO\ncharlie\ndelta\necho\nfoxtrot\n";
        let script = line_diff(SRC, dst);
        assert_eq!(script.apply(SRC).unwrap(), dst);
    }

    #[test]
    fn identical_text_is_one_copy() {
        let script = line_diff(SRC, SRC);
        assert_eq!(script.ops.len(), 1);
        assert!(matches!(
            script.ops[0],
            LineOp::Copy {
                src_line: 0,
                count: 5
            }
        ));
        assert_eq!(script.apply(SRC).unwrap(), SRC);
    }

    #[test]
    fn deletion_delta_is_small_reverse_is_large() {
        let dst = b"alpha\necho\n";
        let fwd = line_diff(SRC, dst);
        let rev = line_diff(dst, SRC);
        assert!(fwd.encoded_size() < rev.encoded_size());
        assert_eq!(fwd.inserted_bytes(), 0);
        assert_eq!(rev.inserted_bytes(), "bravo\ncharlie\ndelta\n".len());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let dst = b"zero\nalpha\ncharlie\nnew tail";
        let script = line_diff(SRC, dst);
        let decoded = LineScript::decode(&script.encode()).unwrap();
        assert_eq!(decoded, script);
        assert_eq!(decoded.apply(SRC).unwrap(), dst);
    }

    #[test]
    fn apply_rejects_out_of_range_copy() {
        let script = LineScript {
            ops: vec![LineOp::Copy {
                src_line: 3,
                count: 10,
            }],
        };
        assert_eq!(script.apply(SRC), Err(ScriptError::CopyOutOfRange));
    }

    #[test]
    fn decode_rejects_truncation() {
        let script = line_diff(SRC, b"alpha\nNEW\n");
        let enc = script.encode();
        assert!(LineScript::decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn empty_source_and_target() {
        let script = line_diff(b"", b"");
        assert!(script.apply(b"").unwrap().is_empty());
        let script = line_diff(b"", b"data\n");
        assert_eq!(script.apply(b"").unwrap(), b"data\n");
        let script = line_diff(b"data\n", b"");
        assert!(script.apply(b"data\n").unwrap().is_empty());
    }

    #[test]
    fn two_way_size_is_symmetric() {
        let b = b"alpha\nbravo\nCHARLIE\ndelta\n";
        assert_eq!(two_way_size(SRC, b), two_way_size(b, SRC));
    }

    #[test]
    fn no_trailing_newline_handled() {
        let src = b"one\ntwo";
        let dst = b"one\ntwo\nthree";
        let script = line_diff(src, dst);
        assert_eq!(script.apply(src).unwrap(), dst);
    }
}
