//! Property-based tests for the differencing substrate: every delta
//! mechanism must reconstruct exactly, for arbitrary inputs.

use dsv_delta::bytes_delta;
use dsv_delta::myers::{apply_diff, diff_slices, edit_distance};
use dsv_delta::script::{line_diff, two_way_size, LineScript};
use dsv_delta::tabular::{Table, TableDelta, TableEdit};
use dsv_delta::xor::XorDelta;
use proptest::prelude::*;

/// Arbitrary "text": lines of printable content with varying terminators.
fn arb_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec("[a-z0-9 ,.]{0,30}", 0..40).prop_map(|lines| {
        let mut out = Vec::new();
        for (i, l) in lines.iter().enumerate() {
            out.extend_from_slice(l.as_bytes());
            if i + 1 < lines.len() || l.len() % 2 == 0 {
                out.push(b'\n');
            }
        }
        out
    })
}

/// A mutation of some text: splice random bytes at a random position.
fn arb_edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (arb_text(), arb_text(), any::<prop::sample::Index>()).prop_map(|(base, insert, idx)| {
        let mut edited = base.clone();
        let pos = if base.is_empty() {
            0
        } else {
            idx.index(base.len())
        };
        edited.splice(pos..pos, insert.iter().copied());
        (base, edited)
    })
}

proptest! {
    /// Myers diff always reconstructs the target.
    #[test]
    fn myers_reconstructs((a, b) in (arb_text(), arb_text())) {
        let ops = diff_slices(&a, &b);
        prop_assert_eq!(apply_diff(&a, &b, &ops), b);
    }

    /// Myers edit distance is symmetric for token sequences.
    #[test]
    fn myers_distance_symmetric((a, b) in (arb_text(), arb_text())) {
        let d_ab = edit_distance(&diff_slices(&a, &b));
        let d_ba = edit_distance(&diff_slices(&b, &a));
        prop_assert_eq!(d_ab, d_ba);
    }

    /// Myers distance satisfies identity and a triangle-ish upper bound.
    #[test]
    fn myers_distance_metric_properties(a in arb_text(), b in arb_text(), c in arb_text()) {
        prop_assert_eq!(edit_distance(&diff_slices(&a, &a)), 0);
        let ab = edit_distance(&diff_slices(&a, &b));
        let bc = edit_distance(&diff_slices(&b, &c));
        let ac = edit_distance(&diff_slices(&a, &c));
        prop_assert!(ac <= ab + bc, "triangle: {} > {} + {}", ac, ab, bc);
    }

    /// Line scripts reconstruct and survive serialization.
    #[test]
    fn line_script_roundtrip((a, b) in arb_edited_pair()) {
        let script = line_diff(&a, &b);
        prop_assert_eq!(script.apply(&a).unwrap(), b.clone());
        let decoded = LineScript::decode(&script.encode()).unwrap();
        prop_assert_eq!(decoded.apply(&a).unwrap(), b);
    }

    /// Two-way (undirected) size is symmetric.
    #[test]
    fn two_way_symmetric((a, b) in (arb_text(), arb_text())) {
        prop_assert_eq!(two_way_size(&a, &b), two_way_size(&b, &a));
    }

    /// Byte deltas reconstruct, roundtrip their encoding, and a small
    /// splice produces a delta far smaller than the target.
    #[test]
    fn byte_delta_roundtrip((a, b) in arb_edited_pair()) {
        let ops = bytes_delta::diff(&a, &b);
        prop_assert_eq!(bytes_delta::apply(&a, &ops).unwrap(), b.clone());
        let enc = bytes_delta::encode(&ops);
        let dec = bytes_delta::decode(&enc).unwrap();
        prop_assert_eq!(bytes_delta::apply(&a, &dec).unwrap(), b);
    }

    /// XOR deltas apply in both directions and roundtrip their encoding.
    #[test]
    fn xor_symmetric_roundtrip((a, b) in (arb_text(), arb_text())) {
        let d = XorDelta::between(&a, &b);
        if a.len() != b.len() {
            prop_assert_eq!(d.apply(&a).unwrap(), b.clone());
            prop_assert_eq!(d.apply(&b).unwrap(), a.clone());
        }
        let d2 = XorDelta::decode(&d.encode()).unwrap();
        prop_assert_eq!(d2, d);
    }

    /// Compression roundtrips arbitrary bytes.
    #[test]
    fn lz_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let c = dsv_compress::compress(&data);
        prop_assert_eq!(dsv_compress::decompress(&c).unwrap(), data);
    }
}

/// Random valid table edits, generated against the table's current shape.
fn apply_random_edits(
    mut table: Table,
    seeds: &[u64],
) -> Result<(Table, TableDelta), dsv_delta::tabular::TableError> {
    let mut edits = Vec::new();
    for &s in seeds {
        let rows = table.rows.len();
        let cols = table.columns.len();
        let edit = match s % 5 {
            0 => TableEdit::AddRows {
                at: (s as u32) % (rows as u32 + 1),
                rows: vec![(0..cols).map(|c| format!("v{s}c{c}")).collect()],
            },
            1 if rows > 0 => TableEdit::DeleteRows {
                at: (s as u32) % rows as u32,
                count: 1,
            },
            2 => TableEdit::AddColumn {
                at: (s as u32) % (cols as u32 + 1),
                name: format!("col{s}"),
                values: (0..rows).map(|r| format!("n{r}")).collect(),
            },
            3 if cols > 1 => TableEdit::RemoveColumn {
                at: (s as u32) % cols as u32,
            },
            _ if rows > 0 && cols > 0 => TableEdit::ModifyCells {
                cells: vec![(
                    (s as u32) % rows as u32,
                    (s as u32) % cols as u32,
                    format!("m{s}"),
                )],
            },
            _ => continue,
        };
        table = TableDelta {
            edits: vec![edit.clone()],
        }
        .apply(&table)?;
        edits.push(edit);
    }
    Ok((table, TableDelta { edits }))
}

proptest! {
    /// Chains of valid tabular edits apply, and the combined delta equals
    /// applying edits one at a time; encoding roundtrips.
    #[test]
    fn tabular_edit_chains(seeds in proptest::collection::vec(any::<u64>(), 1..20)) {
        let mut base = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..5 {
            base.push_row(vec![format!("{i}a"), format!("{i}b"), format!("{i}c")]).unwrap();
        }
        let (expected, delta) = apply_random_edits(base.clone(), &seeds).unwrap();
        prop_assert_eq!(delta.apply(&base).unwrap(), expected.clone());
        let decoded = TableDelta::decode(&delta.encode()).unwrap();
        prop_assert_eq!(decoded.apply(&base).unwrap(), expected.clone());
        // CSV serialization of the result roundtrips too.
        prop_assert_eq!(Table::from_csv(&expected.to_csv()).unwrap(), expected);
    }
}
