//! Server-side semantics for the `dsvd` protocol.
//!
//! [`Dsvd`] owns one repository behind a [`parking_lot::RwLock`] and
//! implements the request → response mapping on top of the
//! [`dsv_net`] transport:
//!
//! * **commit queue** — mutations (`Commit`, `Optimize`) take the write
//!   lock, so they serialize in arrival order while any number of
//!   `Checkout`/`Stats` readers proceed concurrently under read locks;
//! * **shared checkout cache** — one [`CheckoutCache`] arena is installed
//!   on the repository and therefore shared by *all* client checkouts
//!   (content-addressed, so concurrent commits can never make it stale);
//! * **durability** — when a save root is configured (the `dsvd` binary
//!   always does), repository metadata is re-persisted after every
//!   successful mutation, so a later local `dsv` run sees remote commits;
//! * **observability** — the conversation is span-instrumented
//!   `serve → conn → decode/handle/encode` with a per-opcode child under
//!   `handle`, plus `net.requests` / `net.bytes_in` / `net.bytes_out`
//!   counters, so `--trace-json` on the server captures per-opcode
//!   subtrees.
//!
//! Protocol robustness: oversized frames, truncated streams, unknown
//! opcodes, and malformed bodies each produce a structured error frame
//! (where the stream is still framed) or a clean close — never a panic
//! or a hang; a read timeout bounds how long an idle or stalled client
//! can pin a worker.

use crate::optimize::OptimizeReport;
use crate::repo::{OnlineOptions, Placement, Repository};
use crate::{persist, CommitId};
use dsv_core::{ChunkingSpec, ModePolicy, PlanSpec, Problem};
use dsv_net::frame::{errcode, read_frame, write_frame, NetError, PROTOCOL_VERSION};
use dsv_net::proto::{
    CandidateLine, CandidateNumbers, OptimizeSummary, Request, Response, StatsSummary, WireMode,
    WireSolver,
};
use dsv_net::server::{ConnHandler, ServeControl, Server};
use dsv_obs as obs;
use dsv_storage::{CheckoutCache, ObjectStore};
use parking_lot::RwLock;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Tunables for a [`Dsvd`] instance.
#[derive(Debug, Clone)]
pub struct DsvdConfig {
    /// Budget for the shared checkout cache; `0` disables it.
    pub cache_bytes: u64,
    /// Largest accepted frame body (commit payloads bound this).
    pub max_frame: u32,
    /// Per-read socket timeout on the decode path; `None` blocks forever.
    pub read_timeout: Option<Duration>,
}

impl Default for DsvdConfig {
    fn default() -> Self {
        DsvdConfig {
            cache_bytes: 256 * 1024 * 1024,
            max_frame: dsv_net::DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One served repository: the state every connection handler shares.
pub struct Dsvd<S: ObjectStore> {
    repo: RwLock<Repository<S>>,
    cache: Option<Arc<CheckoutCache>>,
    save_root: Option<PathBuf>,
    config: DsvdConfig,
}

impl<S: ObjectStore + Send + Sync> Dsvd<S> {
    /// Wrap `repo` for serving; installs the shared checkout cache.
    pub fn new(mut repo: Repository<S>, config: DsvdConfig) -> Self {
        let cache =
            (config.cache_bytes > 0).then(|| repo.enable_checkout_cache(config.cache_bytes));
        Dsvd {
            repo: RwLock::new(repo),
            cache,
            save_root: None,
            config,
        }
    }

    /// Re-persist repository metadata under `root` after every mutation.
    pub fn with_save_root(mut self, root: PathBuf) -> Self {
        self.save_root = Some(root);
        self
    }

    /// The cache arena shared across all client checkouts, if enabled.
    pub fn cache(&self) -> Option<&Arc<CheckoutCache>> {
        self.cache.as_ref()
    }

    /// The served repository (primarily for tests and the experiment
    /// harness to seed/inspect state around a serve run).
    pub fn repo(&self) -> &RwLock<Repository<S>> {
        &self.repo
    }

    /// Run the accept loop on `server` until a client sends `Shutdown`.
    /// Blocks the calling thread; spans land in that thread's recorder.
    pub fn serve(&self, server: &Server) {
        let span = obs::span!("serve");
        let handle = span.handle();
        let _serve = span.entered();
        let handler = DsvdConn {
            dsvd: self,
            serve: handle,
        };
        server.serve(&handler);
    }

    fn handle_request(&self, req: Request) -> (Response, ServeControl) {
        match req {
            // A second Hello after the handshake is a sequencing bug.
            Request::Hello { .. } => (
                Response::Error {
                    code: errcode::BAD_REQUEST,
                    message: "unexpected Hello after handshake".into(),
                },
                ServeControl::Continue,
            ),
            Request::Ping => (Response::Pong, ServeControl::Continue),
            Request::Commit {
                branch,
                message,
                online,
                hops,
                theta,
                data,
            } => {
                let mut repo = self.repo.write();
                let result = if online {
                    let opts = OnlineOptions {
                        hops: hops as usize,
                        max_recreation_bytes: theta,
                        ..OnlineOptions::default()
                    };
                    repo.commit_online(&branch, &data, &message, opts)
                } else {
                    repo.commit_bounded(&branch, &data, &message, theta)
                };
                let resp = match result {
                    Ok(id) => self.persisted(
                        &repo,
                        Response::CommitOk {
                            id: id.0,
                            bytes: data.len() as u64,
                            online,
                        },
                    ),
                    Err(e) => Response::server_error(e.to_string()),
                };
                (resp, ServeControl::Continue)
            }
            Request::Checkout { version } => {
                let repo = self.repo.read();
                let resp = match repo.checkout_measured(CommitId(version)) {
                    Ok((data, work)) => Response::CheckoutOk { data, work },
                    Err(e) => Response::server_error(e.to_string()),
                };
                (resp, ServeControl::Continue)
            }
            Request::Optimize {
                problem,
                solver,
                mode,
                reveal_hops,
                hop_bound,
            } => (
                self.optimize(problem, solver, mode, reveal_hops, hop_bound),
                ServeControl::Continue,
            ),
            Request::Stats => {
                let repo = self.repo.read();
                let summary = StatsSummary {
                    stats: repo.store().stats(),
                    logical_bytes: repo.logical_bytes(),
                    cache: self.cache.as_ref().map(|c| c.stats()),
                };
                (Response::StatsOk(summary), ServeControl::Continue)
            }
            Request::Shutdown => (Response::ShutdownOk, ServeControl::Shutdown),
        }
    }

    fn optimize(
        &self,
        problem: Problem,
        solver: WireSolver,
        mode: WireMode,
        reveal_hops: u32,
        hop_bound: Option<u32>,
    ) -> Response {
        if let WireSolver::Named(name) = &solver {
            if dsv_core::solvers::by_name(name).is_none() {
                return Response::Error {
                    code: errcode::BAD_REQUEST,
                    message: format!("no solver named '{name}' in the registry (see: dsv solvers)"),
                };
            }
        }
        let mut repo = self.repo.write();
        let mut spec = PlanSpec::new(problem).reveal_hops(reveal_hops as usize);
        if let Some(bound) = hop_bound {
            spec = spec.hop_bound(bound);
        }
        match solver {
            WireSolver::Auto => {}
            _ => spec = spec.solver(solver.to_choice()),
        }
        match mode {
            WireMode::Auto => {}
            WireMode::Binary => spec = spec.modes(ModePolicy::Binary),
            WireMode::Hybrid { .. } => {
                // Same rule as the local CLI: a chunked-placement repo
                // keeps its own chunker granularity; otherwise the
                // client's requested spec applies.
                let chunking: ChunkingSpec = match repo.placement() {
                    Placement::Chunked(params) => params.into(),
                    Placement::GreedyDelta => match mode.to_policy() {
                        ModePolicy::Hybrid(spec) => spec,
                        _ => unreachable!(),
                    },
                };
                spec = spec.modes(ModePolicy::Hybrid(chunking));
            }
        }
        match repo.optimize_with(&spec) {
            Ok(report) => self.persisted(&repo, Response::OptimizeOk(summarize_report(&report))),
            Err(e) => Response::server_error(e.to_string()),
        }
    }

    /// Persist metadata after a successful mutation; a failed save turns
    /// the success into an error response (the in-memory state advanced,
    /// but the client must know durability was not achieved).
    fn persisted(&self, repo: &Repository<S>, ok: Response) -> Response {
        match &self.save_root {
            Some(root) => match persist::save(repo, root) {
                Ok(()) => ok,
                Err(e) => Response::server_error(format!("persisting repository: {e}")),
            },
            None => ok,
        }
    }
}

/// Flattens an [`OptimizeReport`] to the owned-string wire summary.
pub fn summarize_report(report: &OptimizeReport) -> OptimizeSummary {
    let p = &report.provenance;
    OptimizeSummary {
        problem: report.problem.to_string(),
        solver: p.solver.to_owned(),
        feasible: p.feasible,
        portfolio: p.portfolio,
        storage_before: report.storage_before,
        storage_after: report.storage_after,
        materialized: report.materialized as u64,
        chunked: report.chunked as u64,
        planned_storage_cost: report.planned_storage_cost,
        planned_max_recreation: report.planned_max_recreation,
        planned_sum_recreation: report.planned_sum_recreation,
        candidates: p
            .candidates
            .iter()
            .map(|c| CandidateLine {
                solver: c.solver.to_owned(),
                outcome: match &c.result {
                    Ok(s) => Ok(CandidateNumbers {
                        objective: s.objective,
                        storage: s.storage,
                        sum_recreation: s.sum_recreation,
                        max_recreation: s.max_recreation,
                        feasible: s.feasible,
                    }),
                    Err(e) => Err(e.to_string()),
                },
            })
            .collect(),
    }
}

/// Connection handler: one protocol conversation per accepted stream.
struct DsvdConn<'a, S: ObjectStore> {
    dsvd: &'a Dsvd<S>,
    serve: obs::SpanHandle,
}

impl<S: ObjectStore + Send + Sync> DsvdConn<'_, S> {
    /// Runs the framed conversation; errors that cannot be reported
    /// in-band (the stream is gone or unframed) just end the connection.
    fn session(&self, stream: &TcpStream, conn: &obs::SpanHandle) -> ServeControl {
        let max = self.dsvd.config.max_frame;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.dsvd.config.read_timeout);
        let mut reader = BufReader::new(stream);
        let mut writer = BufWriter::new(stream);
        let respond = |resp: &Response, w: &mut BufWriter<&TcpStream>| -> bool {
            let frame = resp.encode();
            obs::counter!("net.bytes_out", frame.wire_len());
            write_frame(w, &frame).is_ok()
        };

        // Handshake: the first frame must be a matching Hello.
        match read_frame(&mut reader, max) {
            Ok(frame) => match Request::decode(&frame) {
                Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                    obs::counter!("net.bytes_in", frame.wire_len());
                    if !respond(
                        &Response::HelloOk {
                            version: PROTOCOL_VERSION,
                        },
                        &mut writer,
                    ) {
                        return ServeControl::Continue;
                    }
                }
                Ok(Request::Hello { version }) => {
                    let resp = Response::Error {
                        code: errcode::VERSION_MISMATCH,
                        message: format!(
                            "server speaks protocol v{PROTOCOL_VERSION}, client sent v{version}"
                        ),
                    };
                    respond(&resp, &mut writer);
                    return ServeControl::Continue;
                }
                Ok(_) => {
                    let resp = Response::Error {
                        code: errcode::BAD_REQUEST,
                        message: "first frame must be Hello".into(),
                    };
                    respond(&resp, &mut writer);
                    return ServeControl::Continue;
                }
                Err(e) => {
                    respond(&Response::error_for(&e), &mut writer);
                    return ServeControl::Continue;
                }
            },
            Err(e) => {
                if !matches!(e, NetError::Eof) {
                    respond(&Response::error_for(&e), &mut writer);
                }
                return ServeControl::Continue;
            }
        }

        loop {
            let decode = conn.child("decode").entered();
            let frame = match read_frame(&mut reader, max) {
                Ok(frame) => frame,
                // Clean close between frames: the client is done.
                Err(NetError::Eof) => return ServeControl::Continue,
                // The stream is still framed only up to the bad length
                // prefix / timeout — report and close.
                Err(e @ (NetError::FrameTooLarge { .. } | NetError::Timeout)) => {
                    drop(decode);
                    respond(&Response::error_for(&e), &mut writer);
                    return ServeControl::Continue;
                }
                Err(_) => return ServeControl::Continue,
            };
            obs::counter!("net.bytes_in", frame.wire_len());
            obs::counter!("net.requests", 1);
            let req = match Request::decode(&frame) {
                Ok(req) => req,
                // Frame boundaries are intact; report in-band and keep
                // the connection alive.
                Err(e) => {
                    drop(decode);
                    if respond(&Response::error_for(&e), &mut writer) {
                        continue;
                    }
                    return ServeControl::Continue;
                }
            };
            drop(decode);

            let handle_span = conn.child("handle");
            let op = handle_span.handle();
            let _handle = handle_span.entered();
            let op_name = match &req {
                Request::Hello { .. } => "hello",
                Request::Ping => "ping",
                Request::Commit { .. } => "commit",
                Request::Checkout { .. } => "checkout",
                Request::Optimize { .. } => "optimize",
                Request::Stats => "stats",
                Request::Shutdown => "shutdown",
            };
            let op_span = op.child(op_name).entered();
            let (resp, control) = self.dsvd.handle_request(req);
            drop(op_span);
            drop(_handle);

            let _encode = conn.child("encode").entered();
            let sent = respond(&resp, &mut writer);
            drop(_encode);
            if control == ServeControl::Shutdown {
                return ServeControl::Shutdown;
            }
            if !sent {
                return ServeControl::Continue;
            }
        }
    }
}

impl<S: ObjectStore + Send + Sync> ConnHandler for DsvdConn<'_, S> {
    fn handle(&self, stream: TcpStream) -> ServeControl {
        let conn_span = self.serve.child("conn");
        let conn = conn_span.handle();
        let _conn = conn_span.entered();
        obs::counter!("net.connections", 1);
        self.session(&stream, &conn)
    }
}
