//! Server-side semantics for the `dsvd` protocol.
//!
//! [`Dsvd`] owns one repository behind a [`parking_lot::RwLock`] and
//! implements the request → response mapping on top of the
//! [`dsv_net`] transport:
//!
//! * **commit queue** — mutations (`Commit`, `Optimize`) take the write
//!   lock, so they serialize in arrival order while any number of
//!   `Checkout`/`Stats` readers proceed concurrently under read locks;
//! * **shared checkout cache** — one [`CheckoutCache`] arena is installed
//!   on the repository and therefore shared by *all* client checkouts
//!   (content-addressed, so concurrent commits can never make it stale);
//! * **durability** — when a save root is configured (the `dsvd` binary
//!   always does), repository metadata is re-persisted after every
//!   successful mutation, so a later local `dsv` run sees remote commits;
//!   a *failed* save rolls the in-memory mutation back before the error
//!   frame is sent, so memory never claims what disk does not hold;
//! * **idempotent commits** — commits carrying a nonzero token are
//!   answered from a bounded replay log when the token was already
//!   applied, so a client retrying after a lost response cannot
//!   double-commit;
//! * **observability** — the conversation is span-instrumented
//!   `serve → conn → decode/handle/encode` with a per-opcode child under
//!   `handle`, plus `net.requests` / `net.bytes_in` / `net.bytes_out`
//!   counters, so `--trace-json` on the server captures per-opcode
//!   subtrees.
//!
//! Protocol robustness: oversized frames, truncated streams, unknown
//! opcodes, and malformed bodies each produce a structured error frame
//! (where the stream is still framed) or a clean close — never a panic
//! or a hang; a read timeout bounds how long an idle or stalled client
//! can pin a worker.

use crate::fsck::{self, FsckReport, Recovery};
use crate::optimize::OptimizeReport;
use crate::repo::{OnlineOptions, Placement, Repository};
use crate::{persist, CommitId};
use dsv_core::{ChunkingSpec, ModePolicy, PlanSpec, Problem};
use dsv_net::frame::{errcode, read_frame, write_frame, NetError, PROTOCOL_VERSION};
use dsv_net::proto::{
    CandidateLine, CandidateNumbers, FsckSummary, OptimizeSummary, Request, Response, StatsSummary,
    WireMode, WireRecovery, WireSolver,
};
use dsv_net::server::{ConnHandler, ServeControl, Server};
use dsv_obs as obs;
use dsv_storage::{CheckoutCache, ObjectStore};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Tunables for a [`Dsvd`] instance.
#[derive(Debug, Clone)]
pub struct DsvdConfig {
    /// Budget for the shared checkout cache; `0` disables it.
    pub cache_bytes: u64,
    /// Largest accepted frame body (commit payloads bound this).
    pub max_frame: u32,
    /// Per-read socket timeout on the decode path; `None` blocks forever.
    pub read_timeout: Option<Duration>,
}

impl Default for DsvdConfig {
    fn default() -> Self {
        DsvdConfig {
            cache_bytes: 256 * 1024 * 1024,
            max_frame: dsv_net::DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// How many commit-token → response pairs the replay log keeps. A
/// retried commit only needs its token remembered for the retry window
/// (seconds); 128 in-flight commits is far beyond the worker pool.
const REPLAY_CAPACITY: usize = 128;

/// Bounded FIFO of recently applied commit tokens and their responses.
/// A retried commit whose token is found here replays the recorded
/// response instead of applying again — exactly-once commits over an
/// at-least-once transport.
#[derive(Default)]
struct ReplayLog {
    entries: VecDeque<(u64, Response)>,
}

impl ReplayLog {
    fn get(&self, token: u64) -> Option<Response> {
        self.entries
            .iter()
            .find(|(t, _)| *t == token)
            .map(|(_, resp)| resp.clone())
    }

    fn record(&mut self, token: u64, resp: Response) {
        if self.entries.len() == REPLAY_CAPACITY {
            self.entries.pop_front();
        }
        self.entries.push_back((token, resp));
    }
}

/// One served repository: the state every connection handler shares.
pub struct Dsvd<S: ObjectStore> {
    repo: RwLock<Repository<S>>,
    cache: Option<Arc<CheckoutCache>>,
    save_root: Option<PathBuf>,
    config: DsvdConfig,
    replay: Mutex<ReplayLog>,
}

impl<S: ObjectStore + Send + Sync> Dsvd<S> {
    /// Wrap `repo` for serving; installs the shared checkout cache.
    pub fn new(mut repo: Repository<S>, config: DsvdConfig) -> Self {
        let cache =
            (config.cache_bytes > 0).then(|| repo.enable_checkout_cache(config.cache_bytes));
        Dsvd {
            repo: RwLock::new(repo),
            cache,
            save_root: None,
            config,
            replay: Mutex::new(ReplayLog::default()),
        }
    }

    /// Re-persist repository metadata under `root` after every mutation.
    pub fn with_save_root(mut self, root: PathBuf) -> Self {
        self.save_root = Some(root);
        self
    }

    /// The cache arena shared across all client checkouts, if enabled.
    pub fn cache(&self) -> Option<&Arc<CheckoutCache>> {
        self.cache.as_ref()
    }

    /// The served repository (primarily for tests and the experiment
    /// harness to seed/inspect state around a serve run).
    pub fn repo(&self) -> &RwLock<Repository<S>> {
        &self.repo
    }

    /// Run the accept loop on `server` until a client sends `Shutdown`.
    /// Blocks the calling thread; spans land in that thread's recorder.
    pub fn serve(&self, server: &Server) {
        let span = obs::span!("serve");
        let handle = span.handle();
        let _serve = span.entered();
        let handler = DsvdConn {
            dsvd: self,
            serve: handle,
        };
        server.serve(&handler);
    }

    fn handle_request(&self, req: Request) -> (Response, ServeControl) {
        match req {
            // A second Hello after the handshake is a sequencing bug.
            Request::Hello { .. } => (
                Response::Error {
                    code: errcode::BAD_REQUEST,
                    message: "unexpected Hello after handshake".into(),
                },
                ServeControl::Continue,
            ),
            Request::Ping => (Response::Pong, ServeControl::Continue),
            Request::Commit {
                token,
                branch,
                message,
                online,
                hops,
                theta,
                data,
            } => {
                let mut repo = self.repo.write();
                // Token already applied? Replay the recorded response so
                // a retry after a lost ack cannot double-commit. Checked
                // under the write lock, so two racing retries of the same
                // token serialize here.
                if token != 0 {
                    if let Some(resp) = self.replay.lock().get(token) {
                        obs::counter!("net.commit_replays", 1);
                        return (resp, ServeControl::Continue);
                    }
                }
                let checkpoint = repo.checkpoint();
                let result = if online {
                    let opts = OnlineOptions {
                        hops: hops as usize,
                        max_recreation_bytes: theta,
                        ..OnlineOptions::default()
                    };
                    repo.commit_online(&branch, &data, &message, opts)
                } else {
                    repo.commit_bounded(&branch, &data, &message, theta)
                };
                let resp = match result {
                    Ok(id) => {
                        let ok = Response::CommitOk {
                            id: id.0,
                            bytes: data.len() as u64,
                            online,
                        };
                        match self.persist_mutation(&mut repo, checkpoint) {
                            Ok(()) => {
                                if token != 0 {
                                    self.replay.lock().record(token, ok.clone());
                                }
                                ok
                            }
                            Err(e) => Response::server_error(e),
                        }
                    }
                    Err(e) => Response::server_error(e.to_string()),
                };
                (resp, ServeControl::Continue)
            }
            Request::Checkout { version } => {
                let repo = self.repo.read();
                let resp = match repo.checkout_measured(CommitId(version)) {
                    Ok((data, work)) => Response::CheckoutOk { data, work },
                    Err(e) => Response::server_error(e.to_string()),
                };
                (resp, ServeControl::Continue)
            }
            Request::Optimize {
                problem,
                solver,
                mode,
                reveal_hops,
                hop_bound,
            } => (
                self.optimize(problem, solver, mode, reveal_hops, hop_bound),
                ServeControl::Continue,
            ),
            Request::Stats => {
                let repo = self.repo.read();
                let summary = StatsSummary {
                    stats: repo.store().stats(),
                    logical_bytes: repo.logical_bytes(),
                    cache: self.cache.as_ref().map(|c| c.stats()),
                };
                (Response::StatsOk(summary), ServeControl::Continue)
            }
            Request::Fsck { repair } => {
                let resp = if repair {
                    let mut repo = self.repo.write();
                    match fsck::fsck_repair(&mut repo, self.save_root.as_deref()) {
                        Ok(report) => Response::FsckOk(summarize_fsck(&report)),
                        Err(e) => Response::server_error(e.to_string()),
                    }
                } else {
                    let repo = self.repo.read();
                    Response::FsckOk(summarize_fsck(&fsck::fsck(
                        &repo,
                        self.save_root.as_deref(),
                    )))
                };
                (resp, ServeControl::Continue)
            }
            Request::Shutdown => (Response::ShutdownOk, ServeControl::Shutdown),
            // The bare-store opcodes are served by `dsvd --store-server`
            // (`dsv_net::remote::StoreService`); a repository front end
            // owns its store and does not expose raw object access.
            Request::StorePut { .. }
            | Request::StoreGet { .. }
            | Request::StoreContains { .. }
            | Request::StoreRemove { .. }
            | Request::StoreObjectIds
            | Request::StoreStats => (
                Response::Error {
                    code: errcode::BAD_REQUEST,
                    message: "object-store opcodes are only served by a store server \
                              (dsvd --store-server), not a repository server"
                        .into(),
                },
                ServeControl::Continue,
            ),
        }
    }

    fn optimize(
        &self,
        problem: Problem,
        solver: WireSolver,
        mode: WireMode,
        reveal_hops: u32,
        hop_bound: Option<u32>,
    ) -> Response {
        if let WireSolver::Named(name) = &solver {
            if dsv_core::solvers::by_name(name).is_none() {
                return Response::Error {
                    code: errcode::BAD_REQUEST,
                    message: format!("no solver named '{name}' in the registry (see: dsv solvers)"),
                };
            }
        }
        let mut repo = self.repo.write();
        let mut spec = PlanSpec::new(problem).reveal_hops(reveal_hops as usize);
        if let Some(bound) = hop_bound {
            spec = spec.hop_bound(bound);
        }
        match solver {
            WireSolver::Auto => {}
            _ => spec = spec.solver(solver.to_choice()),
        }
        match mode {
            WireMode::Auto => {}
            WireMode::Binary => spec = spec.modes(ModePolicy::Binary),
            WireMode::Hybrid { .. } => {
                // Same rule as the local CLI: a chunked-placement repo
                // keeps its own chunker granularity; otherwise the
                // client's requested spec applies.
                let chunking: ChunkingSpec = match repo.placement() {
                    Placement::Chunked(params) => params.into(),
                    Placement::GreedyDelta => match mode.to_policy() {
                        ModePolicy::Hybrid(spec) => spec,
                        _ => unreachable!(),
                    },
                };
                spec = spec.modes(ModePolicy::Hybrid(chunking));
            }
        }
        // With a save root the repack runs journaled and crash-safe
        // (`optimize_durable` persists, and rolls its swap back if the
        // save fails); in-memory servers take the plain path.
        let result = match &self.save_root {
            Some(root) => repo.optimize_durable(&spec, root),
            None => repo.optimize_with(&spec),
        };
        match result {
            Ok(report) => Response::OptimizeOk(summarize_report(&report)),
            Err(e) => Response::server_error(e.to_string()),
        }
    }

    /// Persist metadata after a successful mutation. A failed save rolls
    /// the in-memory mutation back to `checkpoint` before reporting, so
    /// the server never answers future requests from state disk does not
    /// hold; the objects the mutation wrote stay behind as collectable
    /// orphans (content-addressed, so a retry converges on them).
    fn persist_mutation(
        &self,
        repo: &mut Repository<S>,
        checkpoint: crate::repo::Checkpoint,
    ) -> Result<(), String> {
        match &self.save_root {
            Some(root) => match persist::save(repo, root) {
                Ok(()) => Ok(()),
                Err(e) => {
                    repo.restore(checkpoint);
                    obs::counter!("net.commit_rollbacks", 1);
                    Err(format!("persisting repository: {e}"))
                }
            },
            None => Ok(()),
        }
    }
}

/// Flattens an [`FsckReport`] to wire counts.
pub fn summarize_fsck(report: &FsckReport) -> FsckSummary {
    FsckSummary {
        clean: report.is_clean(),
        versions_checked: report.versions_checked as u64,
        objects_checked: report.objects_checked as u64,
        bad_addresses: report.bad_addresses.len() as u64,
        unreadable: report.unreadable.len() as u64,
        orphans: report.orphans.len() as u64,
        orphans_removed: report.orphans_removed as u64,
        journal_pending: report.journal_pending,
        recovery: report.recovery.as_ref().map(|r| match r {
            Recovery::Clean => WireRecovery::Clean,
            Recovery::RolledForward { removed } => WireRecovery::RolledForward {
                removed: *removed as u64,
            },
            Recovery::RolledBack { removed } => WireRecovery::RolledBack {
                removed: *removed as u64,
            },
        }),
    }
}

/// Flattens an [`OptimizeReport`] to the owned-string wire summary.
pub fn summarize_report(report: &OptimizeReport) -> OptimizeSummary {
    let p = &report.provenance;
    OptimizeSummary {
        problem: report.problem.to_string(),
        solver: p.solver.to_owned(),
        feasible: p.feasible,
        portfolio: p.portfolio,
        storage_before: report.storage_before,
        storage_after: report.storage_after,
        materialized: report.materialized as u64,
        chunked: report.chunked as u64,
        planned_storage_cost: report.planned_storage_cost,
        planned_max_recreation: report.planned_max_recreation,
        planned_sum_recreation: report.planned_sum_recreation,
        candidates: p
            .candidates
            .iter()
            .map(|c| CandidateLine {
                solver: c.solver.to_owned(),
                outcome: match &c.result {
                    Ok(s) => Ok(CandidateNumbers {
                        objective: s.objective,
                        storage: s.storage,
                        sum_recreation: s.sum_recreation,
                        max_recreation: s.max_recreation,
                        feasible: s.feasible,
                    }),
                    Err(e) => Err(e.to_string()),
                },
            })
            .collect(),
    }
}

/// Connection handler: one protocol conversation per accepted stream.
struct DsvdConn<'a, S: ObjectStore> {
    dsvd: &'a Dsvd<S>,
    serve: obs::SpanHandle,
}

impl<S: ObjectStore + Send + Sync> DsvdConn<'_, S> {
    /// Runs the framed conversation; errors that cannot be reported
    /// in-band (the stream is gone or unframed) just end the connection.
    fn session(&self, stream: &TcpStream, conn: &obs::SpanHandle) -> ServeControl {
        let max = self.dsvd.config.max_frame;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.dsvd.config.read_timeout);
        let mut reader = BufReader::new(stream);
        let mut writer = BufWriter::new(stream);
        let respond = |resp: &Response, w: &mut BufWriter<&TcpStream>| -> bool {
            let frame = resp.encode();
            obs::counter!("net.bytes_out", frame.wire_len());
            write_frame(w, &frame).is_ok()
        };

        // Handshake: the first frame must be a matching Hello.
        match read_frame(&mut reader, max) {
            Ok(frame) => match Request::decode(&frame) {
                Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                    obs::counter!("net.bytes_in", frame.wire_len());
                    if !respond(
                        &Response::HelloOk {
                            version: PROTOCOL_VERSION,
                        },
                        &mut writer,
                    ) {
                        return ServeControl::Continue;
                    }
                }
                Ok(Request::Hello { version }) => {
                    let resp = Response::Error {
                        code: errcode::VERSION_MISMATCH,
                        message: format!(
                            "server speaks protocol v{PROTOCOL_VERSION}, client sent v{version}"
                        ),
                    };
                    respond(&resp, &mut writer);
                    return ServeControl::Continue;
                }
                Ok(_) => {
                    let resp = Response::Error {
                        code: errcode::BAD_REQUEST,
                        message: "first frame must be Hello".into(),
                    };
                    respond(&resp, &mut writer);
                    return ServeControl::Continue;
                }
                Err(e) => {
                    respond(&Response::error_for(&e), &mut writer);
                    return ServeControl::Continue;
                }
            },
            Err(e) => {
                if !matches!(e, NetError::Eof) {
                    respond(&Response::error_for(&e), &mut writer);
                }
                return ServeControl::Continue;
            }
        }

        loop {
            let decode = conn.child("decode").entered();
            let frame = match read_frame(&mut reader, max) {
                Ok(frame) => frame,
                // Clean close between frames: the client is done.
                Err(NetError::Eof) => return ServeControl::Continue,
                // The stream is framed only up to the bad length prefix —
                // report in-band, then close.
                Err(e @ NetError::FrameTooLarge { .. }) => {
                    drop(decode);
                    respond(&Response::error_for(&e), &mut writer);
                    return ServeControl::Continue;
                }
                // Idle timeout between frames: close silently, like a
                // dropped connection. An error frame written here would
                // sit in the socket buffer and desynchronize a client
                // that later reuses the idle connection — it would read
                // the stale frame as the reply to its next request.
                Err(NetError::Timeout) => return ServeControl::Continue,
                Err(_) => return ServeControl::Continue,
            };
            obs::counter!("net.bytes_in", frame.wire_len());
            obs::counter!("net.requests", 1);
            let req = match Request::decode(&frame) {
                Ok(req) => req,
                // Frame boundaries are intact; report in-band and keep
                // the connection alive.
                Err(e) => {
                    drop(decode);
                    if respond(&Response::error_for(&e), &mut writer) {
                        continue;
                    }
                    return ServeControl::Continue;
                }
            };
            drop(decode);

            let handle_span = conn.child("handle");
            let op = handle_span.handle();
            let _handle = handle_span.entered();
            let op_name = match &req {
                Request::Hello { .. } => "hello",
                Request::Ping => "ping",
                Request::Commit { .. } => "commit",
                Request::Checkout { .. } => "checkout",
                Request::Optimize { .. } => "optimize",
                Request::Stats => "stats",
                Request::Shutdown => "shutdown",
                Request::Fsck { .. } => "fsck",
                Request::StorePut { .. } => "store.put",
                Request::StoreGet { .. } => "store.get",
                Request::StoreContains { .. } => "store.contains",
                Request::StoreRemove { .. } => "store.remove",
                Request::StoreObjectIds => "store.ids",
                Request::StoreStats => "store.stats",
            };
            let op_span = op.child(op_name).entered();
            let (resp, control) = self.dsvd.handle_request(req);
            drop(op_span);
            drop(_handle);

            let _encode = conn.child("encode").entered();
            let sent = respond(&resp, &mut writer);
            drop(_encode);
            if control == ServeControl::Shutdown {
                return ServeControl::Shutdown;
            }
            if !sent {
                return ServeControl::Continue;
            }
        }
    }
}

impl<S: ObjectStore + Send + Sync> ConnHandler for DsvdConn<'_, S> {
    fn handle(&self, stream: TcpStream) -> ServeControl {
        let conn_span = self.serve.child("conn");
        let conn = conn_span.handle();
        let _conn = conn_span.entered();
        obs::counter!("net.connections", 1);
        self.session(&stream, &conn)
    }
}
