//! On-disk repository persistence.
//!
//! Layout of a repository directory:
//!
//! ```text
//! <root>/meta.dsv            line-based metadata (versions, branches, plan)
//! <root>/objects/            content-addressed object files (flat FileStore)
//! <root>/objects/shard-<i>/  … or one FileStore per shard (sharded layout)
//! <root>/repack.journal      repack intent journal (present mid-repack only)
//! ```
//!
//! # Crash model
//!
//! [`save`] replaces `meta.dsv` crash-atomically (write `meta.dsv.tmp`,
//! fsync it, rename over `meta.dsv`, fsync the directory), so a crash at
//! any point leaves either the old or the new metadata, never a torn
//! file. Object writes are similarly atomic and fsynced by
//! [`FileStore`] under [`dsv_storage::Durability::Full`], and meta is
//! only ever written after the objects it references — an interrupted
//! commit therefore loads as the pre-commit history plus some orphaned
//! (unreferenced, content-addressed) objects, which `dsv fsck` collects.
//!
//! Repacks additionally write an intent journal ([`RepackJournal`])
//! *before* the meta swap naming the intended new object list and the
//! stale ids to collect afterwards; `dsv fsck` / server restart use it to
//! roll an interrupted repack forward (meta already swapped → finish the
//! GC) or backward (meta still old → drop the unreferenced new objects).
//!
//! The metadata format is a deliberately simple, versioned text format —
//! one record per line, fields space-separated, the commit message last
//! (newlines in messages are flattened to spaces on save; a prototype
//! limitation matching the paper's system).
//!
//! Format v2 adds the placement policy (so a reloaded chunked repository
//! keeps chunking new commits) and a `c` plan marker for versions stored
//! as chunk manifests. Format v3 adds a `store sharded <n>` line for
//! repositories whose objects live in a
//! [`ShardedStore<FileStore>`](dsv_storage::ShardedStore) — the shard
//! count is a routing property, so it must reopen exactly as written.
//! Format v4 adds `store remote-sharded <n> <addr>...` for repositories
//! whose objects live on remote store servers
//! (`ShardedStore<RemoteStore>`, see `dsv_net::remote`): the address
//! *order* is the shard order, so the same id keeps routing to the same
//! server across reopens. Flat repositories keep saving as v2, local
//! sharded ones as v3; v1 files (binary plans, implicit greedy
//! placement) still load. [`load`] returns the store behind
//! [`RepoStore`], which dispatches to whichever layout the meta names.

use crate::commit::{CommitId, CommitMeta};
use crate::error::VcsError;
use crate::repo::{Placement, Repository};
use dsv_chunk::ChunkerParams;
use dsv_core::StorageMode;
use dsv_net::RemoteStore;
use dsv_storage::fault;
use dsv_storage::{FileStore, Object, ObjectId, ObjectStore, ShardedStore, StoreError, StoreStats};
use std::fmt::Write as _;
use std::path::Path;

const MAGIC_V1: &str = "dsv-meta v1";
const MAGIC_V2: &str = "dsv-meta v2";
const MAGIC_V3: &str = "dsv-meta v3";
const MAGIC_V4: &str = "dsv-meta v4";

/// The store of a loaded repository: a flat [`FileStore`] (meta v1/v2),
/// a [`ShardedStore`] of per-shard `FileStore`s (meta v3's
/// `store sharded <n>` layout), or a `ShardedStore` of
/// [`RemoteStore`] shards dialing remote store servers (meta v4's
/// `store remote-sharded <n> <addr>...`). Delegates the whole
/// [`ObjectStore`] surface — including the batch methods and stats, so a
/// sharded repository keeps its concurrent batch writes behind this
/// wrapper.
pub enum RepoStore {
    /// `objects/ab/<hex>` — the original single-directory fan-out.
    Flat(FileStore),
    /// `objects/shard-<i>/ab/<hex>` — id-prefix-routed shards.
    Sharded(ShardedStore<FileStore>),
    /// Objects live on remote store servers, one per shard, in the
    /// persisted address order.
    Remote(ShardedStore<RemoteStore>),
}

macro_rules! delegate {
    ($self:ident, $store:ident => $body:expr) => {
        match $self {
            RepoStore::Flat($store) => $body,
            RepoStore::Sharded($store) => $body,
            RepoStore::Remote($store) => $body,
        }
    };
}

impl ObjectStore for RepoStore {
    fn put(&self, obj: &Object) -> Result<ObjectId, StoreError> {
        delegate!(self, s => s.put(obj))
    }
    fn get(&self, id: ObjectId) -> Result<Object, StoreError> {
        delegate!(self, s => s.get(id))
    }
    fn contains(&self, id: ObjectId) -> bool {
        delegate!(self, s => s.contains(id))
    }
    fn total_bytes(&self) -> u64 {
        delegate!(self, s => s.total_bytes())
    }
    fn len(&self) -> usize {
        delegate!(self, s => s.len())
    }
    fn remove(&self, id: ObjectId) {
        delegate!(self, s => s.remove(id))
    }
    fn clear(&self) {
        delegate!(self, s => s.clear())
    }
    fn put_batch(&self, objs: &[Object]) -> Result<Vec<ObjectId>, StoreError> {
        delegate!(self, s => s.put_batch(objs))
    }
    fn get_batch(&self, ids: &[ObjectId]) -> Result<Vec<Object>, StoreError> {
        delegate!(self, s => s.get_batch(ids))
    }
    fn contains_batch(&self, ids: &[ObjectId]) -> Vec<bool> {
        delegate!(self, s => s.contains_batch(ids))
    }
    fn remove_batch(&self, ids: &[ObjectId]) {
        delegate!(self, s => s.remove_batch(ids))
    }
    fn shard_count(&self) -> usize {
        delegate!(self, s => s.shard_count())
    }
    fn remote_addrs(&self) -> Vec<String> {
        delegate!(self, s => s.remote_addrs())
    }
    fn object_ids(&self) -> Vec<ObjectId> {
        delegate!(self, s => s.object_ids())
    }
    fn stats(&self) -> StoreStats {
        delegate!(self, s => s.stats())
    }
}

/// Serializes repository metadata (not objects — those live in the
/// store) to `<root>/meta.dsv`. A store reporting remote addresses
/// ([`ObjectStore::remote_addrs`]) is saved as meta v4 with the full
/// topology; a store reporting a non-zero
/// [`ObjectStore::shard_count`] is saved as meta v3 with that count;
/// flat local stores keep the v2 format.
pub fn save<S: dsv_storage::ObjectStore>(
    repo: &Repository<S>,
    root: &Path,
) -> Result<(), VcsError> {
    std::fs::create_dir_all(root).map_err(StoreError::from)?;
    let remote_addrs = repo.store().remote_addrs();
    let shard_count = repo.store().shard_count();
    let mut out = String::new();
    if !remote_addrs.is_empty() {
        let _ = writeln!(out, "{MAGIC_V4}");
        let _ = writeln!(
            out,
            "store remote-sharded {} {}",
            remote_addrs.len(),
            remote_addrs.join(" ")
        );
    } else if shard_count > 0 {
        let _ = writeln!(out, "{MAGIC_V3}");
        let _ = writeln!(out, "store sharded {shard_count}");
    } else {
        let _ = writeln!(out, "{MAGIC_V2}");
    }
    match repo.placement() {
        Placement::GreedyDelta => {
            let _ = writeln!(out, "placement greedy");
        }
        Placement::Chunked(p) => {
            let _ = writeln!(
                out,
                "placement chunked {} {} {}",
                p.min_size, p.avg_size, p.max_size
            );
        }
    }
    let branches: Vec<(&str, CommitId)> = repo.branches().collect();
    let _ = writeln!(out, "branches {}", branches.len());
    for (name, head) in branches {
        let _ = writeln!(out, "{} {}", head.0, name);
    }
    let _ = writeln!(out, "commits {}", repo.version_count());
    for v in 0..repo.version_count() as u32 {
        let meta = repo.meta(CommitId(v)).expect("in range");
        let parents = if meta.parents.is_empty() {
            "-".to_owned()
        } else {
            meta.parents
                .iter()
                .map(|p| p.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let plan = match repo.current_plan()[v as usize] {
            StorageMode::Materialized => "-".to_owned(),
            StorageMode::Chunked => "c".to_owned(),
            StorageMode::Delta(p) => p.to_string(),
        };
        let object = repo.object_id(CommitId(v)).to_hex();
        let message = meta.message.replace('\n', " ");
        let _ = writeln!(
            out,
            "{} {} {} {} {} {}",
            meta.size, meta.sequence, parents, plan, object, message
        );
    }
    fault::atomic_write_file(&root.join("meta.dsv"), out.as_bytes(), "meta")
        .map_err(StoreError::from)?;
    Ok(())
}

const JOURNAL_MAGIC: &str = "dsv-journal v1";

/// The intent record a repack writes before swapping `meta.dsv`: the full
/// object list the new plan will reference (in version order) and the
/// stale ids to garbage-collect once the swap is durable. Its presence on
/// disk means a repack may have been interrupted; recovery compares
/// `new_objects` with the loaded metadata to decide whether to roll the
/// repack forward (finish the GC) or backward (drop unreferenced new
/// objects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepackJournal {
    /// The intended post-repack `objects` list, in version order.
    pub new_objects: Vec<ObjectId>,
    /// Ids referenced only by the old plan, to remove after the swap.
    pub stale: Vec<ObjectId>,
}

fn journal_path(root: &Path) -> std::path::PathBuf {
    root.join("repack.journal")
}

/// Durably records a repack intent at `<root>/repack.journal`
/// (crash-atomic, like [`save`]).
pub fn write_journal(root: &Path, journal: &RepackJournal) -> Result<(), VcsError> {
    let mut out = String::new();
    let _ = writeln!(out, "{JOURNAL_MAGIC}");
    let _ = writeln!(out, "new {}", journal.new_objects.len());
    for id in &journal.new_objects {
        let _ = writeln!(out, "{}", id.to_hex());
    }
    let _ = writeln!(out, "stale {}", journal.stale.len());
    for id in &journal.stale {
        let _ = writeln!(out, "{}", id.to_hex());
    }
    fault::atomic_write_file(&journal_path(root), out.as_bytes(), "journal")
        .map_err(StoreError::from)?;
    Ok(())
}

/// Reads a pending repack journal, if one exists. A torn or malformed
/// journal is reported as corrupt rather than silently dropped — it can
/// only mean the crash-atomic write protocol was violated.
pub fn read_journal(root: &Path) -> Result<Option<RepackJournal>, VcsError> {
    let text = match std::fs::read_to_string(journal_path(root)) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(VcsError::Store(StoreError::from(e))),
    };
    let mut lines = text.lines();
    if lines.next() != Some(JOURNAL_MAGIC) {
        return Err(corrupt());
    }
    let mut section = |tag: &str| -> Result<Vec<ObjectId>, VcsError> {
        let (t, count) = split_header(lines.next().ok_or_else(corrupt)?)?;
        if t != tag {
            return Err(corrupt());
        }
        (0..count)
            .map(|_| ObjectId::from_hex(lines.next().ok_or_else(corrupt)?).ok_or_else(corrupt))
            .collect()
    };
    let new_objects = section("new")?;
    let stale = section("stale")?;
    Ok(Some(RepackJournal { new_objects, stale }))
}

/// Removes a completed repack journal (durably: the removal is fsynced
/// into the directory). Missing journals are fine.
pub fn clear_journal(root: &Path) -> Result<(), VcsError> {
    fault::remove_file(&journal_path(root), "journal").map_err(StoreError::from)?;
    fault::sync_dir(root, "journal").map_err(StoreError::from)?;
    Ok(())
}

/// Loads a repository whose objects live in `<root>/objects` — flat or
/// sharded per the meta file — or, for meta v4, on the remote store
/// servers the meta names (each address is dialed; a server that is down
/// surfaces as a structured [`StoreError::Io`], never a hang beyond the
/// dial timeout). See [`RepoStore`].
pub fn load(root: &Path, compress: bool) -> Result<Repository<RepoStore>, VcsError> {
    let text = std::fs::read_to_string(root.join("meta.dsv")).map_err(StoreError::from)?;
    let mut lines = text.lines();
    let magic = lines.next().ok_or_else(corrupt)?;
    let version = match magic {
        MAGIC_V1 => 1,
        MAGIC_V2 => 2,
        MAGIC_V3 => 3,
        MAGIC_V4 => 4,
        _ => return Err(corrupt()),
    };

    let objects_dir = root.join("objects");
    let store = match version {
        4 => {
            let addrs = parse_remote_store(lines.next().ok_or_else(corrupt)?)?;
            RepoStore::Remote(connect_remote_shards(&addrs)?)
        }
        3 => match parse_store(lines.next().ok_or_else(corrupt)?)? {
            0 => RepoStore::Flat(FileStore::open(&objects_dir, compress)?),
            n => RepoStore::Sharded(ShardedStore::open_sharded(&objects_dir, n, compress)?),
        },
        _ => RepoStore::Flat(FileStore::open(&objects_dir, compress)?),
    };

    let placement = if version >= 2 {
        parse_placement(lines.next().ok_or_else(corrupt)?)?
    } else {
        Placement::GreedyDelta
    };

    let (tag, count) = split_header(lines.next().ok_or_else(corrupt)?)?;
    if tag != "branches" {
        return Err(corrupt());
    }
    let mut branches = Vec::with_capacity(count);
    for _ in 0..count {
        let line = lines.next().ok_or_else(corrupt)?;
        let (head, name) = line.split_once(' ').ok_or_else(corrupt)?;
        let head: u32 = head.parse().map_err(|_| corrupt())?;
        branches.push((name.to_owned(), CommitId(head)));
    }

    let (tag, count) = split_header(lines.next().ok_or_else(corrupt)?)?;
    if tag != "commits" {
        return Err(corrupt());
    }
    let mut commits = Vec::with_capacity(count);
    let mut plan = Vec::with_capacity(count);
    let mut objects = Vec::with_capacity(count);
    for v in 0..count as u32 {
        let line = lines.next().ok_or_else(corrupt)?;
        let mut fields = line.splitn(6, ' ');
        let size: u64 = next_field(&mut fields)?.parse().map_err(|_| corrupt())?;
        let sequence: u64 = next_field(&mut fields)?.parse().map_err(|_| corrupt())?;
        let parents_str = next_field(&mut fields)?;
        let plan_str = next_field(&mut fields)?;
        let object_hex = next_field(&mut fields)?;
        let message = fields.next().unwrap_or("").to_owned();

        let parents = if parents_str == "-" {
            Vec::new()
        } else {
            parents_str
                .split(',')
                .map(|p| p.parse::<u32>().map(CommitId).map_err(|_| corrupt()))
                .collect::<Result<Vec<_>, _>>()?
        };
        let plan_mode = match plan_str {
            "-" => StorageMode::Materialized,
            "c" => StorageMode::Chunked,
            other => StorageMode::Delta(other.parse::<u32>().map_err(|_| corrupt())?),
        };
        let object = ObjectId::from_hex(object_hex).ok_or_else(corrupt)?;
        commits.push(CommitMeta {
            id: CommitId(v),
            parents,
            message,
            sequence,
            size,
        });
        plan.push(plan_mode);
        objects.push(object);
    }

    // One batched membership probe for every referenced object — a
    // remote store answers in one frame per shard instead of one
    // round-trip per version.
    let present = store.contains_batch(&objects);
    if let Some(i) = present.iter().position(|&p| !p) {
        return Err(VcsError::Store(StoreError::NotFound(objects[i])));
    }

    Repository::from_parts(store, commits, plan, objects, branches, placement)
}

/// Dials one [`RemoteStore`] per address, in shard order. Public so
/// `dsv init --remote-shards` builds the identical topology the meta
/// will reopen.
pub fn connect_remote_shards(addrs: &[String]) -> Result<ShardedStore<RemoteStore>, VcsError> {
    if addrs.is_empty() {
        return Err(corrupt());
    }
    let shards = addrs
        .iter()
        .map(|addr| {
            RemoteStore::connect(addr).map_err(|e| {
                VcsError::Store(StoreError::Io(format!("dialing store shard {addr}: {e}")))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShardedStore::new(shards))
}

fn corrupt() -> VcsError {
    VcsError::Store(StoreError::Corrupt("malformed meta.dsv"))
}

/// Parses a v3 `store …` line; returns the shard count (0 = flat).
fn parse_store(line: &str) -> Result<usize, VcsError> {
    let mut fields = line.split(' ');
    if fields.next() != Some("store") {
        return Err(corrupt());
    }
    match fields.next() {
        Some("flat") => Ok(0),
        Some("sharded") => fields
            .next()
            .and_then(|f| f.parse().ok())
            .filter(|&n| (1..=dsv_storage::MAX_SHARDS).contains(&n))
            .ok_or_else(corrupt),
        _ => Err(corrupt()),
    }
}

/// Parses a v4 `store remote-sharded <n> <addr>...` line; the declared
/// count must match the address list (a truncated line must not silently
/// reopen with fewer shards — that would reroute every id).
fn parse_remote_store(line: &str) -> Result<Vec<String>, VcsError> {
    let mut fields = line.split(' ');
    if fields.next() != Some("store") || fields.next() != Some("remote-sharded") {
        return Err(corrupt());
    }
    let n: usize = fields
        .next()
        .and_then(|f| f.parse().ok())
        .filter(|&n| (1..=dsv_storage::MAX_SHARDS).contains(&n))
        .ok_or_else(corrupt)?;
    let addrs: Vec<String> = fields.map(str::to_owned).collect();
    if addrs.len() != n || addrs.iter().any(|a| a.is_empty()) {
        return Err(corrupt());
    }
    Ok(addrs)
}

fn parse_placement(line: &str) -> Result<Placement, VcsError> {
    let mut fields = line.split(' ');
    if fields.next() != Some("placement") {
        return Err(corrupt());
    }
    match fields.next() {
        Some("greedy") => Ok(Placement::GreedyDelta),
        Some("chunked") => {
            let mut num = || -> Result<usize, VcsError> {
                fields
                    .next()
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(corrupt)
            };
            let (min, avg, max) = (num()?, num()?, num()?);
            let params = ChunkerParams::new(min, avg, max).map_err(|_| corrupt())?;
            Ok(Placement::Chunked(params))
        }
        _ => Err(corrupt()),
    }
}

fn split_header(line: &str) -> Result<(&str, usize), VcsError> {
    let (tag, n) = line.split_once(' ').ok_or_else(corrupt)?;
    Ok((tag, n.parse().map_err(|_| corrupt())?))
}

fn next_field<'a>(fields: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, VcsError> {
    fields.next().ok_or_else(corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_core::Problem;

    /// A temp directory that removes itself on drop, so panicking tests
    /// don't leak directories (the old trailing `remove_dir_all` calls
    /// never ran on failure).
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("dsv-persist-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn populated(root: &Path) -> Repository<FileStore> {
        let store = FileStore::open(&root.join("objects"), false).unwrap();
        let mut repo = Repository::init(store);
        let v0 = repo
            .commit("main", b"a,b\n1,2\n3,4\n", "initial import")
            .unwrap();
        repo.branch("dev", v0).unwrap();
        repo.commit("dev", b"a,b\n1,2\n3,4\n5,6\n", "add row")
            .unwrap();
        repo.commit("main", b"a,b\n9,9\n3,4\n", "fix cell\nwith newline")
            .unwrap();
        repo
    }

    #[test]
    fn save_load_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let root = tmp.path();
        let repo = populated(root);
        save(&repo, root).unwrap();
        let loaded = load(root, false).unwrap();

        assert_eq!(loaded.version_count(), repo.version_count());
        for v in 0..repo.version_count() as u32 {
            assert_eq!(
                loaded.checkout(CommitId(v)).unwrap(),
                repo.checkout(CommitId(v)).unwrap(),
                "v{v}"
            );
            let a = loaded.meta(CommitId(v)).unwrap();
            let b = repo.meta(CommitId(v)).unwrap();
            assert_eq!(a.parents, b.parents);
            assert_eq!(a.size, b.size);
        }
        let mut a: Vec<_> = loaded.branches().map(|(n, h)| (n.to_owned(), h)).collect();
        let mut b: Vec<_> = repo.branches().map(|(n, h)| (n.to_owned(), h)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Newlines in messages are flattened, not lost.
        assert!(loaded
            .meta(CommitId(2))
            .unwrap()
            .message
            .contains("fix cell"));
    }

    #[test]
    fn optimize_then_persist_then_reload() {
        let tmp = TempDir::new("optimize");
        let root = tmp.path();
        let mut repo = populated(root);
        repo.optimize_with(&dsv_core::PlanSpec::new(Problem::MinStorage).reveal_hops(3))
            .unwrap();
        save(&repo, root).unwrap();
        let loaded = load(root, false).unwrap();
        for v in 0..repo.version_count() as u32 {
            assert_eq!(
                loaded.checkout(CommitId(v)).unwrap(),
                repo.checkout(CommitId(v)).unwrap()
            );
        }
        assert_eq!(loaded.current_plan(), repo.current_plan());
    }

    #[test]
    fn chunked_placement_survives_reload() {
        let tmp = TempDir::new("chunked");
        let root = tmp.path();
        let params = ChunkerParams::new(64, 256, 1024).unwrap();
        let store = FileStore::open(&root.join("objects"), false).unwrap();
        let mut repo = Repository::init_chunked(store, params);
        let mut data: Vec<u8> = b"id,value\n".to_vec();
        for i in 0..400 {
            data.extend_from_slice(format!("{i},row-payload-{}\n", i * 7).as_bytes());
        }
        repo.commit("main", &data, "base").unwrap();
        data.extend_from_slice(b"400,appended\n");
        repo.commit("main", &data, "grow").unwrap();
        save(&repo, root).unwrap();

        let mut loaded = load(root, false).unwrap();
        // Placement and per-version chunked plan entries round-trip.
        assert_eq!(loaded.placement(), Placement::Chunked(params));
        assert!(loaded.current_plan().iter().all(|m| m.is_chunked()));
        for v in 0..repo.version_count() as u32 {
            assert_eq!(
                loaded.checkout(CommitId(v)).unwrap(),
                repo.checkout(CommitId(v)).unwrap()
            );
        }
        // New commits on the reloaded repository keep chunking (no silent
        // fallback to greedy deltas): the commit dedups against existing
        // chunks instead of storing a delta or a full copy.
        let before = loaded.storage_bytes();
        data.extend_from_slice(b"401,appended-after-reload\n");
        let id = loaded.commit("main", &data, "post-reload").unwrap();
        assert!(loaded.current_plan()[id.index()].is_chunked());
        let added = loaded.storage_bytes() - before;
        assert!(
            added < data.len() as u64 / 4,
            "chunked commit added {added} of {} bytes",
            data.len()
        );
        assert_eq!(loaded.checkout(id).unwrap(), data);
    }

    #[test]
    fn sharded_layout_roundtrips_through_meta_v3() {
        let tmp = TempDir::new("sharded");
        let root = tmp.path();
        let shard_count = 4;
        let store = ShardedStore::open_sharded(&root.join("objects"), shard_count, false).unwrap();
        let mut repo = Repository::init(store);
        let mut data = b"id,value\n".to_vec();
        for i in 0..200 {
            data.extend_from_slice(format!("{i},row-{}\n", i * 13).as_bytes());
        }
        repo.commit("main", &data, "base").unwrap();
        data.extend_from_slice(b"200,appended\n");
        repo.commit("main", &data, "grow").unwrap();
        save(&repo, root).unwrap();

        // Meta v3 records the shard count; the shard directories exist.
        let meta = std::fs::read_to_string(root.join("meta.dsv")).unwrap();
        assert!(meta.starts_with(MAGIC_V3), "{meta}");
        assert!(meta.contains(&format!("store sharded {shard_count}")));
        for i in 0..shard_count {
            assert!(root.join("objects").join(format!("shard-{i}")).is_dir());
        }

        // Reload: same shard routing, same contents, same footprint.
        let mut loaded = load(root, false).unwrap();
        assert!(matches!(loaded.store(), RepoStore::Sharded(_)));
        assert_eq!(loaded.store().stats().shards.len(), shard_count);
        assert_eq!(loaded.storage_bytes(), repo.storage_bytes());
        for v in 0..repo.version_count() as u32 {
            assert_eq!(
                loaded.checkout(CommitId(v)).unwrap(),
                repo.checkout(CommitId(v)).unwrap(),
                "v{v}"
            );
        }

        // Committing and re-saving keeps the sharded layout (v3 again).
        data.extend_from_slice(b"201,post-reload\n");
        let id = loaded.commit("main", &data, "post-reload").unwrap();
        save(&loaded, root).unwrap();
        let reloaded = load(root, false).unwrap();
        assert_eq!(reloaded.store().stats().shards.len(), shard_count);
        assert_eq!(reloaded.checkout(id).unwrap(), data);
    }

    #[test]
    fn sharded_and_flat_repos_store_identical_bytes() {
        // The shard count is a layout property: the same history stores
        // the same physical bytes flat or sharded.
        let tmp = TempDir::new("sharded-eq");
        let root = tmp.path();
        let flat = FileStore::open(&root.join("flat/objects"), true).unwrap();
        let sharded = ShardedStore::open_sharded(&root.join("sharded/objects"), 8, true).unwrap();
        let mut a = Repository::init(flat);
        let mut b = Repository::init(sharded);
        let mut data = b"k,v\n".to_vec();
        for i in 0..150 {
            data.extend_from_slice(format!("{i},payload-{}\n", i * 7).as_bytes());
            if i % 30 == 0 {
                a.commit("main", &data, "grow").unwrap();
                b.commit("main", &data, "grow").unwrap();
            }
        }
        assert_eq!(a.storage_bytes(), b.storage_bytes());
        assert_eq!(a.store().len(), b.store().len());
        for v in 0..a.version_count() as u32 {
            assert_eq!(
                a.object_id(CommitId(v)),
                b.object_id(CommitId(v)),
                "same content addresses regardless of layout"
            );
        }
    }

    /// Loopback store server for meta v4 tests; drop shuts it down.
    struct StoreServerGuard(String, Option<std::thread::JoinHandle<()>>);

    impl StoreServerGuard {
        fn spawn() -> Self {
            let server = dsv_net::Server::bind("127.0.0.1:0").unwrap();
            let addr = server.local_addr().to_string();
            let handle = std::thread::spawn(move || {
                dsv_net::StoreService::new(
                    dsv_storage::MemStore::new(false),
                    dsv_net::StoreServiceConfig::default(),
                )
                .serve(&server);
            });
            StoreServerGuard(addr, Some(handle))
        }
    }

    impl Drop for StoreServerGuard {
        fn drop(&mut self) {
            if let Ok(mut c) = dsv_net::Client::connect(&self.0) {
                let _ = c.shutdown();
            }
            if let Some(h) = self.1.take() {
                let _ = h.join();
            }
        }
    }

    #[test]
    fn remote_sharded_layout_roundtrips_through_meta_v4() {
        let tmp = TempDir::new("remote-v4");
        let root = tmp.path();
        let servers: Vec<StoreServerGuard> = (0..2).map(|_| StoreServerGuard::spawn()).collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.0.clone()).collect();

        let store = connect_remote_shards(&addrs).unwrap();
        let mut repo = Repository::init(store);
        let mut data = b"id,value\n".to_vec();
        for i in 0..120 {
            data.extend_from_slice(format!("{i},row-{}\n", i * 11).as_bytes());
        }
        repo.commit("main", &data, "base").unwrap();
        data.extend_from_slice(b"120,appended\n");
        repo.commit("main", &data, "grow").unwrap();
        save(&repo, root).unwrap();

        // Meta v4 records the full topology in shard order.
        let meta = std::fs::read_to_string(root.join("meta.dsv")).unwrap();
        assert!(meta.starts_with(MAGIC_V4), "{meta}");
        assert!(meta.contains(&format!("store remote-sharded 2 {} {}", addrs[0], addrs[1])));

        // Reload dials the same servers; contents are identical.
        let loaded = load(root, false).unwrap();
        assert!(matches!(loaded.store(), RepoStore::Remote(_)));
        assert_eq!(loaded.store().remote_addrs(), addrs);
        assert_eq!(loaded.storage_bytes(), repo.storage_bytes());
        for v in 0..repo.version_count() as u32 {
            assert_eq!(
                loaded.checkout(CommitId(v)).unwrap(),
                repo.checkout(CommitId(v)).unwrap(),
                "v{v}"
            );
        }

        // A truncated topology line is corruption, not silent rerouting.
        let truncated = meta.replace(
            &format!("store remote-sharded 2 {} {}", addrs[0], addrs[1]),
            &format!("store remote-sharded 2 {}", addrs[0]),
        );
        std::fs::write(root.join("meta.dsv"), truncated).unwrap();
        assert!(load(root, false).is_err());
    }

    #[test]
    fn v1_meta_files_still_load() {
        let tmp = TempDir::new("v1compat");
        let root = tmp.path();
        let repo = populated(root);
        save(&repo, root).unwrap();
        // Rewrite the meta file as v1: drop the placement line.
        let text = std::fs::read_to_string(root.join("meta.dsv")).unwrap();
        let v1 = text
            .replacen(MAGIC_V2, MAGIC_V1, 1)
            .lines()
            .filter(|l| !l.starts_with("placement"))
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(root.join("meta.dsv"), v1 + "\n").unwrap();
        let loaded = load(root, false).unwrap();
        assert_eq!(loaded.placement(), Placement::GreedyDelta);
        assert_eq!(loaded.current_plan(), repo.current_plan());
    }

    #[test]
    fn load_rejects_corruption() {
        let tmp = TempDir::new("corrupt");
        let root = tmp.path();
        let repo = populated(root);
        save(&repo, root).unwrap();
        std::fs::write(root.join("meta.dsv"), "not a meta file\n").unwrap();
        assert!(load(root, false).is_err());
    }

    #[test]
    fn load_detects_missing_objects() {
        let tmp = TempDir::new("missing");
        let root = tmp.path();
        let repo = populated(root);
        save(&repo, root).unwrap();
        // Blow away the object files.
        std::fs::remove_dir_all(root.join("objects")).unwrap();
        std::fs::create_dir_all(root.join("objects")).unwrap();
        assert!(matches!(
            load(root, false),
            Err(VcsError::Store(StoreError::NotFound(_)))
        ));
    }
}
