//! The repository: commits, branches, merges, checkout.

use crate::commit::{CommitId, CommitMeta};
use crate::error::VcsError;
use dsv_chunk::{ChunkStore, ChunkerParams};
use dsv_core::online::{place_version, OnlineCandidate, OnlinePolicy};
use dsv_core::{CostPair, SolveError, StorageMode};
use dsv_delta::bytes_delta;
use dsv_obs as obs;
use dsv_storage::{
    CheckoutCache, Materializer, MemStore, Object, ObjectId, ObjectStore, RecreationWork,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// How new commits are placed in the store (the offline optimizer can
/// later re-pack the whole history regardless of placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Greedy: delta off the first parent when that beats materializing
    /// (the paper's online regime).
    GreedyDelta,
    /// Content-defined chunking: every commit becomes a chunk manifest,
    /// deduplicated against all previously stored chunks (the third
    /// regime; see `dsv-chunk`).
    Chunked(ChunkerParams),
}

/// Options for [`Repository::commit_online`] — bounded local re-planning
/// of one new version (the paper's online problem promoted into the VCS).
///
/// Instead of delta-ing blindly off the first parent (greedy placement)
/// or re-packing the whole history (`optimize_with`, the explicit slow
/// path), an online commit considers a bounded neighborhood of the new
/// version's parents as delta bases and places the version by the
/// storage-cheapest feasible in-edge
/// ([`place_version`](dsv_core::online::place_version)-style local
/// decision). Commit latency is O(`max_candidates` diffs), never
/// O(repack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineOptions {
    /// How many hops of the (undirected) commit DAG around the parents to
    /// consider as delta bases.
    pub hops: usize,
    /// Cap on the number of candidate bases diffed.
    pub max_candidates: usize,
    /// Recreation budget θ in fetched bytes: candidates whose chain would
    /// exceed it are infeasible (Problem 6 flavor). When even
    /// materializing breaches θ — a version can never be recreated
    /// cheaper than reading itself — the commit degrades to materialized,
    /// matching [`Repository::commit_bounded`].
    pub max_recreation_bytes: Option<u64>,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        OnlineOptions {
            hops: 2,
            max_candidates: 8,
            max_recreation_bytes: None,
        }
    }
}

/// A snapshot of a repository's logical state (history, plan, branches)
/// taken by [`Repository::checkpoint`], for rolling back an in-memory
/// mutation whose durable save failed (see the `serve` module): restore
/// it with [`Repository::restore`] and the repository answers requests
/// exactly as before the mutation. Objects the rolled-back mutation
/// already wrote stay in the store as unreferenced orphans — content
/// addressing makes them harmless (a retry converges on the same ids)
/// and `fsck --repair` reclaims them.
pub struct Checkpoint {
    commit_len: usize,
    plan: Vec<StorageMode>,
    objects: Vec<ObjectId>,
    branches: BTreeMap<String, CommitId>,
}

/// How one `record_commit` call decides the new version's storage mode
/// (chunked placement bypasses both: chunking is already a local
/// decision).
#[derive(Debug, Clone, Copy)]
enum CommitStyle {
    /// Delta off the first parent iff smaller than materializing (and
    /// within the optional recreation budget).
    Greedy { max_recreation_bytes: Option<u64> },
    /// Bounded-neighborhood online re-planning.
    Online(OnlineOptions),
}

/// A dataset version repository over an object store `S`.
///
/// Commits store one dataset (a byte string) per version. New commits are
/// placed per the repository's [`Placement`] — greedily as a delta from
/// their first parent when that beats materialization, or as deduplicated
/// chunk manifests — and [`Repository::optimize_with`](crate::Repository)
/// re-packs the whole history under one of the paper's problems.
pub struct Repository<S: ObjectStore> {
    pub(crate) store: S,
    pub(crate) commits: Vec<CommitMeta>,
    /// Current storage plan: the per-version [`StorageMode`].
    pub(crate) plan: Vec<StorageMode>,
    /// Object holding each version under the current plan.
    pub(crate) objects: Vec<ObjectId>,
    branches: BTreeMap<String, CommitId>,
    placement: Placement,
    /// Optional bounded cache serving the hot read path (see
    /// [`CheckoutCache`]); shared by every checkout of this repository.
    checkout_cache: Option<Arc<CheckoutCache>>,
}

impl Repository<MemStore> {
    /// An in-memory repository (uncompressed store).
    pub fn in_memory() -> Self {
        Repository::init(MemStore::new(false))
    }

    /// An in-memory repository with a compressing store (the `Φ ≠ Δ`
    /// regime).
    pub fn in_memory_compressed() -> Self {
        Repository::init(MemStore::new(true))
    }

    /// An in-memory repository storing commits as deduplicated chunk
    /// manifests (compressing store, so chunk payloads also get the
    /// `dsv-compress` treatment).
    pub fn in_memory_chunked() -> Self {
        Repository::init_chunked(MemStore::new(true), ChunkerParams::default())
    }
}

impl<S: ObjectStore> Repository<S> {
    /// Creates an empty repository over `store` with greedy-delta
    /// placement.
    pub fn init(store: S) -> Self {
        Repository::with_placement(store, Placement::GreedyDelta)
    }

    /// Creates an empty repository over `store` whose commits are stored
    /// as content-defined chunk manifests under `params`. Checkout
    /// reassembles manifests transparently; persistence
    /// ([`crate::persist`]) round-trips the placement policy too, so a
    /// reloaded repository keeps chunking new commits.
    pub fn init_chunked(store: S, params: ChunkerParams) -> Self {
        Repository::with_placement(store, Placement::Chunked(params))
    }

    /// Creates an empty repository with an explicit placement policy.
    pub fn with_placement(store: S, placement: Placement) -> Self {
        Repository {
            store,
            commits: Vec::new(),
            plan: Vec::new(),
            objects: Vec::new(),
            branches: BTreeMap::new(),
            placement,
            checkout_cache: None,
        }
    }

    /// Enables a bounded checkout cache of `budget_bytes` (replacing any
    /// existing cache) and returns a handle to it, e.g. for
    /// [`CheckoutCache::stats`]. A zero budget is valid and caches
    /// nothing. Checkouts, online commits, and greedy placement all read
    /// through the cache; entries are keyed by content address so they
    /// can never serve stale bytes.
    pub fn enable_checkout_cache(&mut self, budget_bytes: u64) -> Arc<CheckoutCache> {
        let cache = Arc::new(CheckoutCache::new(budget_bytes));
        self.checkout_cache = Some(Arc::clone(&cache));
        cache
    }

    /// Installs (or, with `None`, removes) a shared checkout cache — use
    /// this to serve several repositories from one byte budget.
    pub fn set_checkout_cache(&mut self, cache: Option<Arc<CheckoutCache>>) {
        self.checkout_cache = cache;
    }

    /// The checkout cache, if one is enabled.
    pub fn checkout_cache(&self) -> Option<&Arc<CheckoutCache>> {
        self.checkout_cache.as_ref()
    }

    /// A materializer reading through the checkout cache when one is
    /// enabled.
    fn materializer(&self) -> Materializer<'_, S> {
        match &self.checkout_cache {
            Some(cache) => Materializer::with_checkout_cache(&self.store, Arc::clone(cache)),
            None => Materializer::new(&self.store),
        }
    }

    /// The placement policy for new commits.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Number of commits.
    pub fn version_count(&self) -> usize {
        self.commits.len()
    }

    /// Commit metadata.
    pub fn meta(&self, id: CommitId) -> Result<&CommitMeta, VcsError> {
        self.commits
            .get(id.index())
            .ok_or(VcsError::UnknownCommit(id.0))
    }

    /// All branch names with their heads.
    pub fn branches(&self) -> impl Iterator<Item = (&str, CommitId)> {
        self.branches.iter().map(|(n, &h)| (n.as_str(), h))
    }

    /// Head of a branch.
    pub fn head(&self, branch: &str) -> Result<CommitId, VcsError> {
        self.branches
            .get(branch)
            .copied()
            .ok_or_else(|| VcsError::UnknownBranch(branch.to_owned()))
    }

    /// Creates a branch pointing at `from`.
    pub fn branch(&mut self, name: &str, from: CommitId) -> Result<(), VcsError> {
        self.meta(from)?;
        if self.branches.contains_key(name) {
            return Err(VcsError::BranchExists(name.to_owned()));
        }
        self.branches.insert(name.to_owned(), from);
        Ok(())
    }

    /// Commits `data` on `branch`. The first commit of the repository
    /// creates the branch implicitly; later commits require it to exist.
    pub fn commit(
        &mut self,
        branch: &str,
        data: &[u8],
        message: &str,
    ) -> Result<CommitId, VcsError> {
        self.commit_bounded(branch, data, message, None)
    }

    /// Like [`commit`](Self::commit), but materializes the new version
    /// whenever storing it as a delta would push its recreation work
    /// (bytes fetched along the chain) above `max_recreation_bytes` — the
    /// online flavour of the paper's Problem 6, applied at commit time so
    /// checkout latency stays bounded between `optimize` runs.
    pub fn commit_bounded(
        &mut self,
        branch: &str,
        data: &[u8],
        message: &str,
        max_recreation_bytes: Option<u64>,
    ) -> Result<CommitId, VcsError> {
        self.commit_styled(
            branch,
            data,
            message,
            CommitStyle::Greedy {
                max_recreation_bytes,
            },
        )
    }

    /// Like [`commit`](Self::commit), but places the new version by
    /// bounded online re-planning (see [`OnlineOptions`]): the best delta
    /// base is chosen from a neighborhood of the parents instead of the
    /// first parent alone, without ever running a full repack. The full
    /// [`optimize_with`](Self::optimize_with) repack remains the explicit
    /// slow path that revisits every placement.
    pub fn commit_online(
        &mut self,
        branch: &str,
        data: &[u8],
        message: &str,
        options: OnlineOptions,
    ) -> Result<CommitId, VcsError> {
        self.commit_styled(branch, data, message, CommitStyle::Online(options))
    }

    fn commit_styled(
        &mut self,
        branch: &str,
        data: &[u8],
        message: &str,
        style: CommitStyle,
    ) -> Result<CommitId, VcsError> {
        let parent = match self.branches.get(branch) {
            Some(&head) => Some(head),
            None if self.commits.is_empty() => None,
            None => return Err(VcsError::UnknownBranch(branch.to_owned())),
        };
        let parents: Vec<CommitId> = parent.into_iter().collect();
        let id = self.record_commit(&parents, data, message, style)?;
        self.branches.insert(branch.to_owned(), id);
        Ok(id)
    }

    /// Records a user-performed merge of `other` into `branch`: `data` is
    /// the merged content the user produced; the commit gets both parents.
    pub fn merge(
        &mut self,
        branch: &str,
        other: CommitId,
        data: &[u8],
        message: &str,
    ) -> Result<CommitId, VcsError> {
        let head = self.head(branch)?;
        self.meta(other)?;
        if head == other {
            return Err(VcsError::DegenerateMerge);
        }
        let id = self.record_commit(
            &[head, other],
            data,
            message,
            CommitStyle::Greedy {
                max_recreation_bytes: None,
            },
        )?;
        self.branches.insert(branch.to_owned(), id);
        Ok(id)
    }

    /// Recreation work (bytes fetched) of checking out `id` under the
    /// current plan — the quantity `commit_bounded` and the online θ
    /// budget. Deliberately bypasses the checkout cache: placement
    /// decisions must reflect the cold-store cost, not whatever happens
    /// to be cached, so the plan stays independent of access history.
    fn recreation_bytes(&self, id: CommitId) -> Result<u64, VcsError> {
        let m = Materializer::new(&self.store);
        let (_, work) = m.materialize_measured(self.objects[id.index()])?;
        Ok(work.bytes_read)
    }

    /// Up to `cap` versions within `hops` undirected steps of `roots` on
    /// the commit DAG, in deterministic BFS order (distance, then parents
    /// before children, then ascending index).
    fn neighborhood(&self, roots: &[CommitId], hops: usize, cap: usize) -> Vec<u32> {
        let n = self.commits.len();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for meta in &self.commits {
            for &p in &meta.parents {
                children[p.index()].push(meta.id.0);
            }
        }
        let mut seen = vec![false; n];
        let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
        let mut out = Vec::new();
        for &r in roots {
            if r.index() < n && !seen[r.index()] {
                seen[r.index()] = true;
                queue.push_back((r.0, 0));
            }
        }
        while let Some((v, d)) = queue.pop_front() {
            out.push(v);
            if out.len() >= cap {
                break;
            }
            if d == hops {
                continue;
            }
            let idx = v as usize;
            let parents = self.commits[idx].parents.iter().map(|p| p.0);
            for u in parents.chain(children[idx].iter().copied()) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back((u, d + 1));
                }
            }
        }
        out
    }

    /// Online placement of `data`: diff against a bounded neighborhood of
    /// the parents and pick the storage-cheapest feasible in-edge via the
    /// paper's online rule ([`place_version`]). Runs under an `online`
    /// span with `reveal`/`place` children and — by construction — no
    /// `pack` or `gc` phase.
    fn online_placement(
        &self,
        parents: &[CommitId],
        data: &[u8],
        options: OnlineOptions,
    ) -> Result<(Object, StorageMode), VcsError> {
        let _span = obs::span!(
            "online",
            hops = options.hops,
            max_candidates = options.max_candidates
        )
        .entered();
        obs::counter!("vcs.online_commits", 1);
        let materialized = || Object::Full {
            data: data.to_vec(),
        };
        if parents.is_empty() {
            return Ok((materialized(), StorageMode::Materialized));
        }
        let neighborhood = self.neighborhood(parents, options.hops, options.max_candidates);
        let reveal = obs::span!("reveal", candidates = neighborhood.len()).entered();
        let mut candidates = Vec::with_capacity(neighborhood.len());
        let mut encodings = BTreeMap::new();
        for &u in &neighborhood {
            let base = self.checkout(CommitId(u))?;
            let encoded = bytes_delta::encode(&bytes_delta::diff(&base, data));
            let cost = encoded.len() as u64;
            candidates.push(OnlineCandidate {
                base: u,
                cost: CostPair {
                    storage: cost,
                    recreation: cost,
                },
                base_recreation: self.recreation_bytes(CommitId(u))?,
            });
            encodings.insert(u, encoded);
        }
        drop(reveal);
        let _place = obs::span!("place").entered();
        let policy = match options.max_recreation_bytes {
            Some(theta) => OnlinePolicy::MaxRecreationWithin(theta),
            None => OnlinePolicy::MinStorage,
        };
        let placement = match place_version(
            CostPair::proportional(data.len() as u64),
            None,
            &candidates,
            policy,
        ) {
            Ok(p) => p,
            // θ below the version's own size: no placement can recreate
            // the version cheaper than reading it, so degrade to
            // materialized exactly like `commit_bounded` does.
            Err(SolveError::RecreationThresholdInfeasible { .. }) => {
                return Ok((materialized(), StorageMode::Materialized));
            }
            Err(e) => return Err(e.into()),
        };
        Ok(match placement.mode {
            StorageMode::Delta(u) => (
                Object::Delta {
                    base: self.objects[u as usize],
                    delta: encodings.remove(&u).expect("winner came from candidates"),
                },
                StorageMode::Delta(u),
            ),
            // `place_version` is offered no chunked estimate here, so the
            // only other outcome is materialization.
            _ => (materialized(), StorageMode::Materialized),
        })
    }

    fn record_commit(
        &mut self,
        parents: &[CommitId],
        data: &[u8],
        message: &str,
        style: CommitStyle,
    ) -> Result<CommitId, VcsError> {
        let _span = obs::span!("commit", bytes = data.len()).entered();
        obs::counter!("vcs.commits", 1);
        let id = CommitId(self.commits.len() as u32);
        if let Placement::Chunked(params) = self.placement {
            // Chunked placement: dedup against every chunk already stored.
            // Recreation cost is the version's own chunks (no chains), so
            // any recreation budget is trivially respected and online
            // re-planning has nothing to decide.
            let put = ChunkStore::new(&self.store, params).and_then(|cs| cs.put_version(data))?;
            self.objects.push(put.id);
            self.plan.push(StorageMode::Chunked);
            self.commits.push(CommitMeta {
                id,
                parents: parents.to_vec(),
                message: message.to_owned(),
                sequence: id.0 as u64,
                size: data.len() as u64,
            });
            return Ok(id);
        }
        let (object, plan_mode) = match style {
            CommitStyle::Online(options) => self.online_placement(parents, data, options)?,
            // Greedy placement: delta off the first parent when it beats
            // materialization (the offline optimizer revisits this) and,
            // if a recreation budget is set, when the resulting chain
            // stays within it.
            CommitStyle::Greedy {
                max_recreation_bytes,
            } => match parents.first() {
                Some(&p) => {
                    let base = self.checkout(p)?;
                    let ops = bytes_delta::diff(&base, data);
                    let encoded = bytes_delta::encode(&ops);
                    let chain_ok = match max_recreation_bytes {
                        None => true,
                        Some(theta) => {
                            self.recreation_bytes(p)?
                                .saturating_add(encoded.len() as u64)
                                <= theta
                        }
                    };
                    if encoded.len() < data.len() && chain_ok {
                        (
                            Object::Delta {
                                base: self.objects[p.index()],
                                delta: encoded,
                            },
                            StorageMode::Delta(p.0),
                        )
                    } else {
                        (
                            Object::Full {
                                data: data.to_vec(),
                            },
                            StorageMode::Materialized,
                        )
                    }
                }
                None => (
                    Object::Full {
                        data: data.to_vec(),
                    },
                    StorageMode::Materialized,
                ),
            },
        };
        let oid = self.store.put(&object)?;
        self.objects.push(oid);
        self.plan.push(plan_mode);
        self.commits.push(CommitMeta {
            id,
            parents: parents.to_vec(),
            message: message.to_owned(),
            sequence: id.0 as u64,
            size: data.len() as u64,
        });
        Ok(id)
    }

    /// Reconstructs the content of a commit (through the checkout cache,
    /// when one is enabled).
    pub fn checkout(&self, id: CommitId) -> Result<Vec<u8>, VcsError> {
        Ok(self.checkout_measured(id)?.0)
    }

    /// Reconstructs the content of a commit and reports the recreation
    /// work performed, including cache interaction (`cache_hits`,
    /// `bytes_saved`).
    pub fn checkout_measured(&self, id: CommitId) -> Result<(Vec<u8>, RecreationWork), VcsError> {
        self.meta(id)?;
        let _span = obs::span!("checkout").entered();
        obs::counter!("vcs.checkouts", 1);
        let m = self.materializer();
        let (bytes, work) = m.materialize_measured(self.objects[id.index()])?;
        Ok((bytes.as_ref().clone(), work))
    }

    /// First-parent history of a branch, newest first.
    pub fn log(&self, branch: &str) -> Result<Vec<&CommitMeta>, VcsError> {
        let mut cur = Some(self.head(branch)?);
        let mut out = Vec::new();
        while let Some(id) = cur {
            let meta = self.meta(id)?;
            out.push(meta);
            cur = meta.parents.first().copied();
        }
        Ok(out)
    }

    /// Physical bytes currently used by the store.
    pub fn storage_bytes(&self) -> u64 {
        self.store.total_bytes()
    }

    /// The underlying object store (e.g. for [`ObjectStore::stats`];
    /// writes go through the repository methods).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Total raw bytes across all committed versions — the numerator of
    /// the store's dedup/delta ratio (`logical_bytes / storage_bytes`).
    pub fn logical_bytes(&self) -> u64 {
        self.commits.iter().map(|m| m.size).sum()
    }

    /// The current storage plan (per-version storage modes).
    pub fn current_plan(&self) -> &[StorageMode] {
        &self.plan
    }

    /// The object currently holding a commit's content.
    pub fn object_id(&self, id: CommitId) -> dsv_storage::ObjectId {
        self.objects[id.index()]
    }

    /// Snapshots the logical state (commit count, plan, objects,
    /// branches) so a failed durable save can be undone with
    /// [`restore`](Self::restore). Commits are append-only, so the
    /// snapshot records only their count; plan, objects, and branches
    /// are cloned (cheap: ids and head pointers, not content).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            commit_len: self.commits.len(),
            plan: self.plan.clone(),
            objects: self.objects.clone(),
            branches: self.branches.clone(),
        }
    }

    /// Rolls the in-memory state back to `checkpoint`. The checkout
    /// cache needs no invalidation — entries are keyed by content
    /// address, so they can never serve stale bytes — and orphaned
    /// store objects are left for `fsck --repair` to reclaim.
    pub fn restore(&mut self, checkpoint: Checkpoint) {
        self.commits.truncate(checkpoint.commit_len);
        self.plan = checkpoint.plan;
        self.objects = checkpoint.objects;
        self.branches = checkpoint.branches;
    }

    /// Reassembles a repository from persisted parts (see
    /// [`crate::persist`]). Validates branch heads and array lengths. The
    /// placement policy persists too, so a reloaded chunked repository
    /// keeps chunking new commits.
    pub fn from_parts(
        store: S,
        commits: Vec<CommitMeta>,
        plan: Vec<StorageMode>,
        objects: Vec<ObjectId>,
        branches: Vec<(String, CommitId)>,
        placement: Placement,
    ) -> Result<Self, VcsError> {
        if commits.len() != plan.len() || commits.len() != objects.len() {
            return Err(VcsError::Store(dsv_storage::StoreError::Corrupt(
                "metadata arrays disagree in length",
            )));
        }
        let n = commits.len() as u32;
        let mut map = BTreeMap::new();
        for (name, head) in branches {
            if head.0 >= n {
                return Err(VcsError::UnknownCommit(head.0));
            }
            map.insert(name, head);
        }
        Ok(Repository {
            store,
            commits,
            plan,
            objects,
            branches: map,
            placement,
            checkout_cache: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csv(rows: usize, tag: &str) -> Vec<u8> {
        let mut out = b"id,value\n".to_vec();
        for i in 0..rows {
            out.extend_from_slice(format!("{i},{tag}-{}\n", i * 3).as_bytes());
        }
        out
    }

    #[test]
    fn commit_and_checkout_roundtrip() {
        let mut repo = Repository::in_memory();
        let data = csv(50, "a");
        let v0 = repo.commit("main", &data, "init").unwrap();
        assert_eq!(repo.checkout(v0).unwrap(), data);
        assert_eq!(repo.version_count(), 1);
    }

    #[test]
    fn chained_commits_store_deltas() {
        let mut repo = Repository::in_memory();
        let base = csv(500, "a");
        repo.commit("main", &base, "init").unwrap();
        let mut v1 = base.clone();
        v1.extend_from_slice(b"500,extra\n");
        let id1 = repo.commit("main", &v1, "append").unwrap();
        // Second commit must be stored as a delta.
        assert_eq!(repo.current_plan()[1], StorageMode::Delta(0));
        assert_eq!(repo.checkout(id1).unwrap(), v1);
        // Store footprint far below two full copies.
        assert!(repo.storage_bytes() < 2 * base.len() as u64);
    }

    #[test]
    fn unrelated_content_materializes() {
        let mut repo = Repository::in_memory();
        repo.commit("main", &csv(50, "a"), "init").unwrap();
        // Totally different content: delta would be larger than full.
        let noise: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        repo.commit("main", &noise, "binary blob").unwrap();
        assert_eq!(repo.current_plan()[1], StorageMode::Materialized);
    }

    #[test]
    fn branches_and_merge() {
        let mut repo = Repository::in_memory();
        let v0 = repo.commit("main", &csv(100, "base"), "init").unwrap();
        repo.branch("team1", v0).unwrap();
        repo.branch("team2", v0).unwrap();
        let a = repo
            .commit("team1", &csv(101, "base"), "team1 row")
            .unwrap();
        let b = repo
            .commit("team2", &csv(100, "edit"), "team2 edit")
            .unwrap();
        let merged = repo
            .merge("team1", b, &csv(101, "edit"), "merge team2")
            .unwrap();
        let meta = repo.meta(merged).unwrap();
        assert!(meta.is_merge());
        assert_eq!(meta.parents, vec![a, b]);
        assert_eq!(repo.checkout(merged).unwrap(), csv(101, "edit"));
    }

    #[test]
    fn log_walks_first_parents() {
        let mut repo = Repository::in_memory();
        let v0 = repo.commit("main", &csv(10, "a"), "one").unwrap();
        let v1 = repo.commit("main", &csv(11, "a"), "two").unwrap();
        let v2 = repo.commit("main", &csv(12, "a"), "three").unwrap();
        let log = repo.log("main").unwrap();
        let ids: Vec<CommitId> = log.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![v2, v1, v0]);
        assert_eq!(log[0].message, "three");
    }

    #[test]
    fn branch_errors() {
        let mut repo = Repository::in_memory();
        let v0 = repo.commit("main", &csv(5, "x"), "init").unwrap();
        assert!(matches!(
            repo.commit("ghost", b"data", "no such branch"),
            Err(VcsError::UnknownBranch(_))
        ));
        repo.branch("dev", v0).unwrap();
        assert!(matches!(
            repo.branch("dev", v0),
            Err(VcsError::BranchExists(_))
        ));
        assert!(matches!(
            repo.branch("dev2", CommitId(99)),
            Err(VcsError::UnknownCommit(99))
        ));
    }

    #[test]
    fn degenerate_merge_rejected() {
        let mut repo = Repository::in_memory();
        let v0 = repo.commit("main", &csv(5, "x"), "init").unwrap();
        assert!(matches!(
            repo.merge("main", v0, b"data", "self merge"),
            Err(VcsError::DegenerateMerge)
        ));
    }

    #[test]
    fn bounded_commit_caps_chain_depth() {
        // A long series of appends: unbounded commits chain forever;
        // bounded commits rematerialize once the chain's fetch bytes
        // would exceed θ.
        let base = csv(400, "x");
        // Budget: the base plus a few hundred delta bytes.
        let theta = base.len() as u64 + 400;
        let mut unbounded = Repository::in_memory();
        let mut bounded = Repository::in_memory();
        let mut data = base.clone();
        unbounded.commit("main", &data, "v0").unwrap();
        bounded
            .commit_bounded("main", &data, "v0", Some(theta))
            .unwrap();
        for i in 0..30 {
            data.extend_from_slice(
                format!(
                    "{},appended-payload-row-number-{i}-padding-padding\n",
                    400 + i
                )
                .as_bytes(),
            );
            unbounded.commit("main", &data, "grow").unwrap();
            bounded
                .commit_bounded("main", &data, "grow", Some(theta))
                .unwrap();
        }
        // Unbounded: a single materialized root.
        assert_eq!(
            unbounded
                .current_plan()
                .iter()
                .filter(|p| p.is_root())
                .count(),
            1
        );
        // Bounded: several materializations, and every checkout within θ
        // (or the version's own size, for versions that outgrew θ and must
        // be fetched whole).
        let materialized = bounded
            .current_plan()
            .iter()
            .filter(|p| p.is_root())
            .count();
        assert!(materialized > 1, "budget must force rematerialization");
        for v in 0..bounded.version_count() as u32 {
            let work = bounded.recreation_bytes(CommitId(v)).unwrap();
            let own = bounded.meta(CommitId(v)).unwrap().size;
            assert!(work <= theta.max(own), "v{v}: {work} > {theta}");
            assert_eq!(
                bounded.checkout(CommitId(v)).unwrap().len(),
                unbounded.checkout(CommitId(v)).unwrap().len()
            );
        }
        // The budget costs storage, as the tradeoff demands.
        assert!(bounded.storage_bytes() > unbounded.storage_bytes());
    }

    #[test]
    fn chunked_repo_roundtrips_and_dedups() {
        let mut plain = Repository::in_memory();
        let mut chunked =
            Repository::init_chunked(MemStore::new(false), dsv_chunk::ChunkerParams::default());
        assert!(matches!(chunked.placement(), Placement::Chunked(_)));
        // Branchy history over a large shared base: each branch appends
        // its own rows, so content overlaps heavily across versions.
        let base = csv(3000, "base");
        let v0p = plain.commit("main", &base, "init").unwrap();
        let v0c = chunked.commit("main", &base, "init").unwrap();
        assert_eq!(v0p, v0c);
        for team in ["team1", "team2", "team3"] {
            plain.branch(team, v0p).unwrap();
            chunked.branch(team, v0c).unwrap();
            let mut data = base.clone();
            for i in 0..4 {
                data.extend_from_slice(format!("{team}-extra-row-{i}\n").as_bytes());
                let a = plain.commit(team, &data, "grow").unwrap();
                let b = chunked.commit(team, &data, "grow").unwrap();
                assert_eq!(a, b);
            }
        }
        // Chunked placement materializes no delta chains...
        assert!(chunked.current_plan().iter().all(|p| p.is_chunked()));
        // ...but stays far below the all-materialized footprint by
        // deduplicating the shared base across branches.
        let materialized: u64 = (0..chunked.version_count() as u32)
            .map(|v| chunked.meta(CommitId(v)).unwrap().size)
            .sum();
        assert!(
            chunked.storage_bytes() < materialized / 2,
            "{} vs {materialized}",
            chunked.storage_bytes()
        );
        // Checkout reassembles manifests byte-exactly.
        for v in 0..chunked.version_count() as u32 {
            assert_eq!(
                chunked.checkout(CommitId(v)).unwrap(),
                plain.checkout(CommitId(v)).unwrap(),
                "v{v}"
            );
        }
    }

    #[test]
    fn chunked_checkout_cost_is_flat_in_history_length() {
        let mut repo = Repository::in_memory_chunked();
        let mut data = csv(800, "x");
        repo.commit("main", &data, "v0").unwrap();
        for i in 0..25 {
            data.extend_from_slice(format!("{},appended-{i}\n", 800 + i).as_bytes());
            repo.commit("main", &data, "grow").unwrap();
        }
        let m = Materializer::new(&repo.store);
        let (_, early) = m.materialize_measured(repo.objects[1]).unwrap();
        let last = repo.version_count() - 1;
        let (_, late) = m.materialize_measured(repo.objects[last]).unwrap();
        // The 26th version fetches its own chunks, not a 26-step chain:
        // work grows with version size (slightly), never with depth.
        assert!(
            late.bytes_written <= early.bytes_written * 2,
            "late {late:?} vs early {early:?}"
        );
    }

    #[test]
    fn checkout_cache_serves_repeat_checkouts() {
        let mut repo = Repository::in_memory();
        let mut data = csv(400, "x");
        repo.commit("main", &data, "v0").unwrap();
        for i in 0..10 {
            data.extend_from_slice(format!("{},grow\n", 400 + i).as_bytes());
            repo.commit("main", &data, "grow").unwrap();
        }
        let tip = CommitId(repo.version_count() as u32 - 1);
        let (cold_bytes, cold) = repo.checkout_measured(tip).unwrap();
        assert_eq!(cold.cache_hits, 0, "no cache installed yet");
        let cache = repo.enable_checkout_cache(1 << 20);
        let (warm_bytes, first) = repo.checkout_measured(tip).unwrap();
        assert_eq!(warm_bytes, cold_bytes);
        assert_eq!(
            first.bytes_read, cold.bytes_read,
            "first read fills the cache"
        );
        let (again_bytes, again) = repo.checkout_measured(tip).unwrap();
        assert_eq!(again_bytes, cold_bytes);
        assert_eq!(again.bytes_read, 0, "tip served from cache");
        assert!(again.cache_hits > 0);
        assert!(again.bytes_saved >= cold.bytes_read);
        let stats = cache.stats();
        assert!(stats.hits >= 1);
        assert!(stats.bytes <= stats.budget_bytes);
        // A mid-chain version only pays for the suffix past the deepest
        // cached ancestor (the intermediates were cached during replay).
        let (_, mid) = repo.checkout_measured(CommitId(5)).unwrap();
        assert_eq!(mid.bytes_read, 0, "prefix cached during tip replay");
    }

    #[test]
    fn online_commit_picks_better_base_than_first_parent() {
        // Greedy deltas chain off the first parent; online placement may
        // choose any neighbor. Construct a merge whose content equals its
        // *second* parent: greedy stores a (nonempty) delta off the first
        // parent, online finds the near-empty delta off the second.
        let base = csv(300, "base");
        let build = |online: bool| {
            let mut repo = Repository::in_memory();
            let v0 = repo.commit("main", &base, "init").unwrap();
            repo.branch("side", v0).unwrap();
            let mut side = base.clone();
            side.extend_from_slice(&csv(80, "side-only")[9..]); // skip header
            let s = repo.commit("side", &side, "side work").unwrap();
            let mut main = base.clone();
            main.extend_from_slice(b"300,main-extra\n");
            repo.commit("main", &main, "main work").unwrap();
            repo.merge("main", s, &side, "merge: take side").unwrap();
            let mut next = side.clone();
            next.extend_from_slice(b"tail-row\n");
            if online {
                repo.commit_online("main", &next, "after", OnlineOptions::default())
                    .unwrap();
            } else {
                repo.commit("main", &next, "after").unwrap();
            }
            repo
        };
        let greedy = build(false);
        let online = build(true);
        let tip = CommitId(greedy.version_count() as u32 - 1);
        assert_eq!(
            greedy.checkout(tip).unwrap(),
            online.checkout(tip).unwrap(),
            "placement must never change content"
        );
        // Both store the tip as a delta; online's base choice may differ
        // but must never store more than greedy's first-parent delta.
        assert!(matches!(
            online.current_plan()[tip.index()],
            StorageMode::Delta(_)
        ));
        assert!(online.storage_bytes() <= greedy.storage_bytes());
    }

    #[test]
    fn online_commit_respects_recreation_budget() {
        let base = csv(400, "x");
        let theta = base.len() as u64 + 400;
        let mut repo = Repository::in_memory();
        let mut data = base.clone();
        let opts = OnlineOptions {
            max_recreation_bytes: Some(theta),
            ..OnlineOptions::default()
        };
        repo.commit_online("main", &data, "v0", opts).unwrap();
        for i in 0..30 {
            data.extend_from_slice(
                format!("{},appended-payload-row-{i}-padding-padding\n", 400 + i).as_bytes(),
            );
            repo.commit_online("main", &data, "grow", opts).unwrap();
        }
        let materialized = repo.current_plan().iter().filter(|p| p.is_root()).count();
        assert!(materialized > 1, "θ must force rematerialization");
        for v in 0..repo.version_count() as u32 {
            let work = repo.recreation_bytes(CommitId(v)).unwrap();
            let own = repo.meta(CommitId(v)).unwrap().size;
            assert!(work <= theta.max(own), "v{v}: {work} > {theta}");
        }
    }

    #[test]
    fn online_commit_on_chunked_repo_stays_chunked() {
        let mut repo = Repository::in_memory_chunked();
        let data = csv(500, "x");
        repo.commit_online("main", &data, "v0", OnlineOptions::default())
            .unwrap();
        let mut next = data.clone();
        next.extend_from_slice(b"500,more\n");
        let v1 = repo
            .commit_online("main", &next, "v1", OnlineOptions::default())
            .unwrap();
        assert!(repo.current_plan().iter().all(|p| p.is_chunked()));
        assert_eq!(repo.checkout(v1).unwrap(), next);
    }

    #[test]
    fn neighborhood_is_bounded_and_deterministic() {
        let mut repo = Repository::in_memory();
        let v0 = repo.commit("main", &csv(50, "a"), "v0").unwrap();
        for i in 0..6 {
            repo.commit("main", &csv(51 + i, "a"), "grow").unwrap();
        }
        repo.branch("dev", v0).unwrap();
        repo.commit("dev", &csv(40, "d"), "dev").unwrap();
        let tip = CommitId(6);
        // hops=1 from v6: itself and its parent.
        assert_eq!(repo.neighborhood(&[tip], 1, 8), vec![6, 5]);
        // From v0: parents-before-children ordering, capped.
        assert_eq!(repo.neighborhood(&[v0], 1, 8), vec![0, 1, 7]);
        assert_eq!(repo.neighborhood(&[v0], 2, 2), vec![0, 1]);
    }

    #[test]
    fn compressed_store_is_smaller() {
        // Realistic tabular data repeats categorical values heavily.
        let mut data = b"id,species,origin\n".to_vec();
        for i in 0..800 {
            data.extend_from_slice(
                format!("{i},saccharomyces-cerevisiae,laboratory-strain-collection\n").as_bytes(),
            );
        }
        let build = |mut repo: Repository<MemStore>| {
            repo.commit("main", &data, "init").unwrap();
            repo.storage_bytes()
        };
        let raw = build(Repository::in_memory());
        let compressed = build(Repository::in_memory_compressed());
        assert!(compressed < raw / 2, "{compressed} vs {raw}");
    }
}
