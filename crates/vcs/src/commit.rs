//! Commit identity and metadata.

/// A commit (= dataset version) identifier: a dense index into the
/// repository's version list, assigned in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommitId(pub u32);

impl CommitId {
    /// The commit's position, usable as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CommitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Metadata recorded per commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitMeta {
    /// This commit's id.
    pub id: CommitId,
    /// Parent commits (empty for a root, two or more for a merge).
    pub parents: Vec<CommitId>,
    /// Commit message.
    pub message: String,
    /// Logical timestamp (commit order).
    pub sequence: u64,
    /// Raw size of the committed version in bytes.
    pub size: u64,
}

impl CommitMeta {
    /// Whether this commit merged multiple parents.
    pub fn is_merge(&self) -> bool {
        self.parents.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let id = CommitId(7);
        assert_eq!(id.to_string(), "v7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn merge_detection() {
        let mut m = CommitMeta {
            id: CommitId(2),
            parents: vec![CommitId(0), CommitId(1)],
            message: "merge".into(),
            sequence: 2,
            size: 10,
        };
        assert!(m.is_merge());
        m.parents.pop();
        assert!(!m.is_merge());
    }
}
