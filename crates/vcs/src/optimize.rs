//! Repository re-packing under the paper's optimization problems.
//!
//! [`Repository::optimize_with`] is the paper's contribution made
//! operational: materialize the history, reveal deltas around the commit
//! DAG, solve the [`PlanSpec`]'s problem through the planner
//! ([`dsv_core::plan`] — Table-1 dispatch, a named registry solver, or a
//! portfolio), re-pack the object store along the resulting storage graph,
//! and garbage-collect the objects the old plan used. The spec's
//! [`ModePolicy`] picks the storage model; under [`ModePolicy::Auto`] a
//! repository whose placement policy is chunked is optimized in the
//! three-mode hybrid model (its chunk store is already paid for), others
//! in the paper's binary model.

use crate::commit::CommitId;
use crate::error::VcsError;
use crate::persist::{self, RepackJournal};
use crate::repo::{Placement, Repository};
use dsv_chunk::{chunked_cost_pairs, pack_versions_hybrid, ChunkerParams};
use dsv_core::{
    plan, CostMatrix, CostPair, ModePolicy, PlanSpec, Problem, ProblemInstance, Provenance,
    StorageMode,
};
use dsv_delta::bytes_delta;
use dsv_obs as obs;
use dsv_storage::{pack_versions, Materializer, ObjectId, ObjectStore, PackOptions};
use std::collections::{HashSet, VecDeque};
use std::path::Path;

/// What an [`Repository::optimize_with`] call achieved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeReport {
    /// Problem that was solved.
    pub problem: Problem,
    /// How the winning plan was chosen: solver name, feasibility, and —
    /// for portfolio runs — every candidate's outcome.
    pub provenance: Provenance,
    /// Physical store bytes before re-packing.
    pub storage_before: u64,
    /// Physical store bytes after re-packing and GC.
    pub storage_after: u64,
    /// Number of versions now materialized.
    pub materialized: usize,
    /// Number of versions now stored as chunk manifests (hybrid target
    /// only; 0 for binary optimizes).
    pub chunked: usize,
    /// Predicted total storage cost of the chosen plan (matrix units).
    pub planned_storage_cost: u64,
    /// Predicted maximum recreation cost of the chosen plan.
    pub planned_max_recreation: u64,
    /// Predicted sum of recreation costs.
    pub planned_sum_recreation: u64,
}

/// A planned-and-packed but not-yet-applied repack, produced by
/// [`Repository::prepare_repack`]. The new plan's objects are already in
/// the store *alongside* the old plan's (content addressing makes that
/// free of conflicts), so applying it is a pure metadata swap
/// ([`Repository::apply_repack`]) and garbage collection
/// ([`Repository::gc_repack`]) runs strictly afterwards. Durable callers
/// write [`PreparedRepack::journal`] between pack and swap so an
/// interrupted repack can be rolled forward or backward on recovery.
pub struct PreparedRepack {
    new_objects: Vec<ObjectId>,
    new_plan: Vec<StorageMode>,
    stale: Vec<ObjectId>,
    report: OptimizeReport,
}

impl PreparedRepack {
    /// The intent record to journal before swapping metadata.
    pub fn journal(&self) -> RepackJournal {
        RepackJournal {
            new_objects: self.new_objects.clone(),
            stale: self.stale.clone(),
        }
    }

    /// Ids referenced only by the old plan (removed by
    /// [`Repository::gc_repack`]).
    pub fn stale(&self) -> &[ObjectId] {
        &self.stale
    }
}

impl<S: ObjectStore> Repository<S> {
    /// Rebuilds the repository's storage layout per `spec`: reveal deltas
    /// within `spec.reveal_hop_count()` hops of the commit DAG (plus
    /// per-version chunked estimates when the effective mode policy is
    /// hybrid), solve the spec's problem with its chosen solver(s), then
    /// execute the winning plan end-to-end — chunked versions become
    /// deduplicated manifests, delta versions chain off whatever mode
    /// their parent landed in — and garbage-collect the old layout. The
    /// returned report carries the planner's [`Provenance`].
    ///
    /// This is the in-memory composition of the repack phases; on-disk
    /// repositories should use [`Repository::optimize_durable`], which
    /// journals the swap so a crash at any point is recoverable.
    pub fn optimize_with(&mut self, spec: &PlanSpec) -> Result<OptimizeReport, VcsError> {
        let _optimize = obs::span!("optimize", versions = self.version_count()).entered();
        let prepared = self.prepare_repack(spec)?;
        self.apply_repack(&prepared);
        Ok(self.gc_repack(prepared))
    }

    /// The crash-safe repack for a repository persisted at `root`:
    ///
    /// 1. plan + pack the new objects (additive — old plan still intact),
    /// 2. durably journal the intent ([`RepackJournal`]),
    /// 3. swap the in-memory plan and crash-atomically rewrite `meta.dsv`,
    /// 4. only then GC the stale objects and clear the journal.
    ///
    /// A crash before step 3's rename leaves the old plan plus orphaned
    /// new objects; a crash after it leaves the new plan plus
    /// not-yet-collected stale objects. Either way the repository loads
    /// and `dsv fsck` (or server restart recovery) finishes the job. If
    /// the meta rewrite *fails* (no crash), the in-memory plan is rolled
    /// back so memory never diverges from disk.
    pub fn optimize_durable(
        &mut self,
        spec: &PlanSpec,
        root: &Path,
    ) -> Result<OptimizeReport, VcsError> {
        let _optimize = obs::span!("optimize", versions = self.version_count()).entered();
        let prepared = self.prepare_repack(spec)?;
        persist::write_journal(root, &prepared.journal())?;
        let old_objects = std::mem::take(&mut self.objects);
        let old_plan = std::mem::take(&mut self.plan);
        self.apply_repack(&prepared);
        if let Err(e) = persist::save(self, root) {
            // Roll back the swap: disk still holds the old meta, so memory
            // must too. The packed objects stay behind as orphans for fsck
            // (removing them here could race another failure).
            self.objects = old_objects;
            self.plan = old_plan;
            if let Some(cache) = self.checkout_cache() {
                cache.clear();
            }
            let _ = persist::clear_journal(root);
            return Err(e);
        }
        let report = self.gc_repack(prepared);
        // A failed journal removal is not an error: the swap is durable,
        // and recovery rolls the journal forward idempotently.
        let _ = persist::clear_journal(root);
        Ok(report)
    }

    /// Phase 1 of a repack: materialize, reveal, solve, and pack the new
    /// plan's objects into the store next to the old plan's. Nothing in
    /// the repository's metadata changes; the returned
    /// [`PreparedRepack`] names the new object list and the stale ids.
    pub fn prepare_repack(&self, spec: &PlanSpec) -> Result<PreparedRepack, VcsError> {
        let n = self.version_count();
        if n == 0 {
            return Err(VcsError::EmptyRepository);
        }
        // Resolve the storage-mode policy against the repository: under
        // `Auto`, a chunked-placement repository optimizes in the hybrid
        // model with its own chunker parameters (previously `optimize`
        // silently fell back to the binary model and un-chunked the repo).
        let chunking: Option<ChunkerParams> = match spec.mode_policy() {
            ModePolicy::Binary => None,
            ModePolicy::Hybrid(cs) => Some(ChunkerParams::try_from(cs)?),
            ModePolicy::Auto => match self.placement() {
                Placement::Chunked(params) => Some(params),
                Placement::GreedyDelta => None,
            },
        };
        let reveal_hops = spec.reveal_hop_count();
        let storage_before = self.store.total_bytes();
        obs::counter!("optimize.runs", 1);

        // Materialize every version once (cached chain walks — a
        // repack-local bounded cache, so chain prefixes are shared but
        // the pass cannot hold the whole history in memory at once). The
        // Materializer's own per-call "materialize" spans aggregate as
        // one n-count child of the optimize span.
        let contents: Vec<Vec<u8>> = {
            let m = Materializer::with_checkout_cache(
                &self.store,
                std::sync::Arc::new(dsv_storage::CheckoutCache::new(
                    dsv_storage::DEFAULT_CACHE_BUDGET,
                )),
            );
            let mut out = Vec::with_capacity(n);
            for id in &self.objects {
                out.push(m.materialize(*id)?.as_ref().clone());
            }
            out
        };

        // Build the instance: Φ = Δ over real byte-delta sizes, plus —
        // for the hybrid target — per-version chunked estimates.
        let diag: Vec<CostPair> = contents
            .iter()
            .map(|c| CostPair::proportional(c.len() as u64))
            .collect();
        let mut matrix = CostMatrix::directed(diag);
        // The all-pairs reveal is the optimize hot path (§5.1's "real
        // deltas between every pair"): diff the pairs on the dsv-par
        // runtime, reveal sequentially (reveal order does not affect the
        // matrix).
        let pairs = self.pairs_within_hops(reveal_hops);
        let reveal_span = obs::span!("reveal", pairs = pairs.len()).entered();
        let costs = dsv_par::par_map(&pairs, |&(a, b)| {
            let fwd = bytes_delta::encode(&bytes_delta::diff(
                &contents[a as usize],
                &contents[b as usize],
            ));
            let rev = bytes_delta::encode(&bytes_delta::diff(
                &contents[b as usize],
                &contents[a as usize],
            ));
            (fwd.len() as u64, rev.len() as u64)
        });
        for (&(a, b), (fwd, rev)) in pairs.iter().zip(costs) {
            matrix.reveal(a, b, CostPair::proportional(fwd));
            matrix.reveal(b, a, CostPair::proportional(rev));
        }
        drop(reveal_span);
        if let Some(params) = chunking {
            for (i, pair) in chunked_cost_pairs(&contents, params)?
                .into_iter()
                .enumerate()
            {
                matrix.set_chunked(i as u32, pair);
            }
        }
        let instance = ProblemInstance::new(matrix);
        let chosen = plan(&instance, spec)?;
        let solution = chosen.solution;

        // Collect the old plan's reference closure *before* repacking:
        // the version objects themselves plus, for chunk manifests, the
        // chunk objects they reference (so re-packing a chunked repository
        // reclaims its chunks instead of leaking them). The extra decode
        // per version is noise next to the O(n²) diff phase above. New
        // objects are packed alongside the old ones and stale objects are
        // removed only after the pack succeeds — a failed or interrupted
        // repack must never destroy a store that is the only copy of the
        // history (`ObjectStore::clear` would).
        let mut old_ids: HashSet<_> = self.objects.iter().copied().collect();
        for id in &self.objects {
            if let Ok(dsv_storage::Object::Chunked { chunks }) = self.store.get(*id) {
                old_ids.extend(chunks);
            }
        }
        let packed = match chunking {
            Some(params) => {
                pack_versions_hybrid(&self.store, &contents, solution.modes(), params)?.0
            }
            None => pack_versions(
                &self.store,
                &contents,
                solution.parents(),
                PackOptions::default(),
            )?,
        };
        // The new plan's reference closure: chunked manifests keep their
        // chunk objects alive.
        let mut new_ids: HashSet<_> = packed.ids.iter().copied().collect();
        for id in &packed.ids {
            if let Ok(dsv_storage::Object::Chunked { chunks }) = self.store.get(*id) {
                new_ids.extend(chunks);
            }
        }
        let stale: Vec<_> = old_ids.difference(&new_ids).copied().collect();
        Ok(PreparedRepack {
            new_objects: packed.ids,
            new_plan: solution.modes().to_vec(),
            stale,
            report: OptimizeReport {
                problem: spec.problem(),
                provenance: chosen.provenance,
                storage_before,
                storage_after: 0, // filled in by gc_repack
                materialized: solution.materialized().count(),
                chunked: solution.chunked().count(),
                planned_storage_cost: solution.storage_cost(),
                planned_max_recreation: solution.max_recreation(),
                planned_sum_recreation: solution.sum_recreation(),
            },
        })
    }

    /// Phase 2 of a repack: swap the repository's plan metadata to the
    /// prepared layout. Pure in-memory bookkeeping — callers persisting
    /// to disk journal first and save immediately after.
    pub fn apply_repack(&mut self, prepared: &PreparedRepack) {
        self.objects = prepared.new_objects.clone();
        self.plan = prepared.new_plan.clone();
        // The repack orphaned the old plan's object ids: entries in the
        // checkout cache are keyed by content address so they could never
        // serve stale bytes, but they would sit dead under the byte
        // budget. Drop them.
        if let Some(cache) = self.checkout_cache() {
            cache.clear();
        }
    }

    /// Phase 3 of a repack: remove the old plan's now-unreferenced
    /// objects and finish the report. Runs strictly after the swap is
    /// (durably, for on-disk callers) applied, so an interruption here
    /// can only leave collectable orphans, never a broken history.
    pub fn gc_repack(&mut self, prepared: PreparedRepack) -> OptimizeReport {
        let PreparedRepack {
            stale, mut report, ..
        } = prepared;
        let gc_span = obs::span!("gc", stale = stale.len());
        obs::counter!("optimize.gc.stale_objects", stale.len() as u64);
        gc_span.in_scope(|| self.store.remove_batch(&stale));
        drop(gc_span);
        report.storage_after = self.store.total_bytes();
        obs::gauge!("optimize.storage_after_bytes", report.storage_after as f64);
        report
    }

    /// Unordered commit pairs within `hops` in the (undirected) commit
    /// DAG — the reveal strategy for optimize.
    fn pairs_within_hops(&self, hops: usize) -> Vec<(u32, u32)> {
        let n = self.version_count();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for meta in &self.commits {
            for p in &meta.parents {
                adj[meta.id.index()].push(p.0);
                adj[p.index()].push(meta.id.0);
            }
        }
        let mut out = Vec::new();
        let mut dist = vec![u32::MAX; n];
        let mut touched = Vec::new();
        let mut queue = VecDeque::new();
        for s in 0..n as u32 {
            dist[s as usize] = 0;
            touched.push(s);
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                let d = dist[v as usize];
                if d as usize >= hops {
                    continue;
                }
                for &u in &adj[v as usize] {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = d + 1;
                        touched.push(u);
                        if u > s {
                            out.push((s, u));
                        }
                        queue.push_back(u);
                    }
                }
            }
            for &t in &touched {
                dist[t as usize] = u32::MAX;
            }
            touched.clear();
        }
        out
    }

    /// Convenience: measured recreation work (bytes fetched + produced)
    /// for checking out `id` under the current plan.
    pub fn checkout_work(&self, id: CommitId) -> Result<u64, VcsError> {
        self.meta(id)?;
        let m = Materializer::new(&self.store);
        let (_, work) = m.materialize_measured(self.objects[id.index()])?;
        Ok(work.bytes_read + work.bytes_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_core::SolverChoice;
    use dsv_storage::MemStore;

    fn spec(problem: Problem, hops: usize) -> PlanSpec {
        PlanSpec::new(problem).reveal_hops(hops)
    }

    /// A repo with a mainline and one long side chain, sized so the
    /// tradeoff is visible.
    fn populated() -> Repository<MemStore> {
        let mut repo = Repository::in_memory();
        let row = |i: usize| format!("{i},payload-{},2015\n", i * 31);
        let csv_of = |rows: std::ops::Range<usize>| -> Vec<u8> {
            let mut out = b"id,payload,year\n".to_vec();
            for i in rows {
                out.extend_from_slice(row(i).as_bytes());
            }
            out
        };
        let v0 = repo.commit("main", &csv_of(0..300), "base").unwrap();
        for k in 1..=6 {
            repo.commit("main", &csv_of(0..300 + k * 5), "grow")
                .unwrap();
        }
        repo.branch("side", v0).unwrap();
        for k in 1..=6 {
            repo.commit("side", &csv_of(k..300), "shrink").unwrap();
        }
        repo
    }

    #[test]
    fn optimize_min_storage_shrinks_the_store() {
        let mut repo = populated();
        // Inflate: force-materialize everything first via an optimize
        // with hop 0 reveals... simpler: measure after MinStorage and
        // compare with naive total.
        let naive: u64 = (0..repo.version_count() as u32)
            .map(|v| repo.meta(CommitId(v)).unwrap().size)
            .sum();
        let report = repo.optimize_with(&spec(Problem::MinStorage, 4)).unwrap();
        assert!(report.storage_after < naive / 2);
        assert_eq!(report.materialized, 1);
        // Contents still intact.
        for v in 0..repo.version_count() as u32 {
            assert!(!repo.checkout(CommitId(v)).unwrap().is_empty());
        }
    }

    #[test]
    fn optimize_min_recreation_materializes_everything() {
        let mut repo = populated();
        let report = repo
            .optimize_with(&spec(Problem::MinRecreation, 4))
            .unwrap();
        // With Φ = Δ and real diffs, materializing is optimal per version
        // unless a chain is cheaper — for grown/shrunk CSVs most versions
        // should materialize.
        assert!(report.materialized >= repo.version_count() / 2);
    }

    #[test]
    fn optimize_respects_max_recreation_threshold() {
        let mut repo = populated();
        let max_size = (0..repo.version_count() as u32)
            .map(|v| repo.meta(CommitId(v)).unwrap().size)
            .max()
            .unwrap();
        let theta = max_size * 3 / 2;
        let report = repo
            .optimize_with(&spec(Problem::MinStorageGivenMaxRecreation { theta }, 4))
            .unwrap();
        assert!(report.planned_max_recreation <= theta);
        // For an uncompressed store with Φ = Δ, the *measured* bytes read
        // during checkout equal the plan's predicted recreation cost: the
        // matrix was built from the same byte-delta encoder that packed
        // the objects. This ties prediction to reality per version.
        let m = Materializer::new(&repo.store);
        for v in 0..repo.version_count() as u32 {
            let (_, work) = m.materialize_measured(repo.objects[v as usize]).unwrap();
            assert!(
                work.bytes_read <= theta,
                "v{v}: read {} vs theta {theta}",
                work.bytes_read
            );
        }
    }

    #[test]
    fn optimize_gc_reclaims_old_objects() {
        let mut repo = populated();
        repo.optimize_with(&spec(Problem::MinRecreation, 4))
            .unwrap();
        let after_spt = repo.storage_bytes();
        let report = repo.optimize_with(&spec(Problem::MinStorage, 4)).unwrap();
        assert_eq!(report.storage_before, after_spt);
        assert!(report.storage_after < after_spt);
    }

    #[test]
    fn roundtrip_after_repeated_optimizes() {
        let mut repo = populated();
        let snapshots: Vec<Vec<u8>> = (0..repo.version_count() as u32)
            .map(|v| repo.checkout(CommitId(v)).unwrap())
            .collect();
        for problem in [
            Problem::MinStorage,
            Problem::MinRecreation,
            Problem::MinStorage,
        ] {
            repo.optimize_with(&spec(problem, 3)).unwrap();
            for (v, expected) in snapshots.iter().enumerate() {
                assert_eq!(
                    &repo.checkout(CommitId(v as u32)).unwrap(),
                    expected,
                    "content must survive repacking (v{v})"
                );
            }
        }
    }

    fn chunked_repo() -> Repository<MemStore> {
        let mut repo = Repository::with_placement(
            MemStore::new(false),
            crate::repo::Placement::Chunked(dsv_chunk::ChunkerParams::default()),
        );
        let row = |i: usize| format!("{i},payload-{},2015\n", i * 31);
        let mut data = b"id,payload,year\n".to_vec();
        for i in 0..600 {
            data.extend_from_slice(row(i).as_bytes());
        }
        repo.commit("main", &data, "base").unwrap();
        for k in 1..8 {
            data.extend_from_slice(row(600 + k).as_bytes());
            repo.commit("main", &data, "grow").unwrap();
        }
        repo
    }

    #[test]
    fn optimize_reclaims_chunks_of_a_chunked_repo() {
        // A chunked repo re-packed into a *binary* delta plan (explicitly
        // requested — Auto would keep it hybrid) must GC its manifests AND
        // their chunk objects.
        let mut repo = chunked_repo();
        let objects_before = repo.store.len();
        let report = repo
            .optimize_with(&spec(Problem::MinStorage, 4).modes(ModePolicy::Binary))
            .unwrap();
        // After repacking, only the plan's objects remain: one Full root
        // plus a delta per remaining version. No orphaned chunks.
        assert_eq!(repo.store.len(), repo.version_count());
        assert!(repo.store.len() < objects_before);
        assert!(report.storage_after < report.storage_before);
        for v in 0..repo.version_count() as u32 {
            assert!(!repo.checkout(CommitId(v)).unwrap().is_empty());
        }
    }

    #[test]
    fn auto_policy_routes_chunked_placement_through_hybrid() {
        // The bug this fixes: `dsv optimize` (no mode flag) on a
        // Placement::Chunked repository silently fell back to the binary
        // model. Under ModePolicy::Auto the persisted placement routes the
        // solve through the hybrid path with the placement's own chunker
        // parameters.
        let mut repo = chunked_repo();
        let snapshots: Vec<Vec<u8>> = (0..repo.version_count() as u32)
            .map(|v| repo.checkout(CommitId(v)).unwrap())
            .collect();
        let report = repo.optimize_with(&spec(Problem::MinStorage, 4)).unwrap();
        // The solve genuinely considered chunked modes: on a grow-only
        // history the dedup increments beat full materialization, so the
        // min-storage plan keeps at least its root in the chunk store.
        assert!(
            report.chunked >= 1,
            "chunked-placement repo was optimized in the binary model"
        );
        assert_eq!(
            repo.current_plan()
                .iter()
                .filter(|m| m.is_chunked())
                .count(),
            report.chunked
        );
        // An explicit Binary request on a fresh copy stores no less.
        let mut binary = chunked_repo();
        let binary_report = binary
            .optimize_with(&spec(Problem::MinStorage, 4).modes(ModePolicy::Binary))
            .unwrap();
        assert!(report.planned_storage_cost <= binary_report.planned_storage_cost);
        for (v, expected) in snapshots.iter().enumerate() {
            assert_eq!(
                &repo.checkout(CommitId(v as u32)).unwrap(),
                expected,
                "v{v}"
            );
        }
    }

    #[test]
    fn portfolio_optimize_carries_full_provenance() {
        let mut repo = populated();
        let report = repo
            .optimize_with(&spec(Problem::MinStorage, 4).solver(SolverChoice::Portfolio))
            .unwrap();
        assert!(report.provenance.portfolio);
        assert!(report.provenance.feasible);
        assert!(report.provenance.candidates.len() >= 3);
        // P1 is exact for MST: the winner matches its storage (ties may
        // crown another solver with a better secondary metric).
        let mst_c = report
            .provenance
            .candidates
            .iter()
            .find(|c| c.solver == "mst")
            .and_then(|c| c.result.as_ref().ok())
            .expect("mst candidate recorded");
        assert_eq!(report.planned_storage_cost, mst_c.storage);
        for v in 0..repo.version_count() as u32 {
            assert!(!repo.checkout(CommitId(v)).unwrap().is_empty());
        }
    }

    #[test]
    fn hybrid_optimize_executes_mixed_plans_end_to_end() {
        let mut repo = populated();
        let snapshots: Vec<Vec<u8>> = (0..repo.version_count() as u32)
            .map(|v| repo.checkout(CommitId(v)).unwrap())
            .collect();
        // A max-recreation bound just above the largest version: binary
        // solves must materialize aggressively; the hybrid target can
        // chunk instead where increments are cheaper.
        let max_size = snapshots.iter().map(|s| s.len() as u64).max().unwrap();
        let theta = max_size * 13 / 10;
        let problem = Problem::MinStorageGivenMaxRecreation { theta };
        let hybrid = repo
            .optimize_with(&spec(problem, 4).modes(ModePolicy::Hybrid(
                dsv_chunk::ChunkerParams::default().into(),
            )))
            .unwrap();
        assert!(hybrid.planned_max_recreation <= theta);
        // The solver-chosen plan survives in the repo and contents are
        // byte-exact under the mixed layout.
        assert_eq!(
            repo.current_plan()
                .iter()
                .filter(|m| m.is_chunked())
                .count(),
            hybrid.chunked
        );
        for (v, expected) in snapshots.iter().enumerate() {
            assert_eq!(
                &repo.checkout(CommitId(v as u32)).unwrap(),
                expected,
                "v{v}"
            );
        }
        // Against the binary solve of the same problem on a fresh copy of
        // the same history, the hybrid plan stores no more.
        let mut binary_repo = populated();
        let binary = binary_repo.optimize_with(&spec(problem, 4)).unwrap();
        assert!(
            hybrid.planned_storage_cost <= binary.planned_storage_cost,
            "hybrid {} vs binary {}",
            hybrid.planned_storage_cost,
            binary.planned_storage_cost
        );
        // Re-optimizing back to a pure delta plan reclaims the chunks.
        let report = repo.optimize_with(&spec(Problem::MinStorage, 4)).unwrap();
        assert_eq!(report.chunked, 0);
        assert_eq!(repo.store.len(), repo.version_count());
    }

    #[test]
    fn empty_repo_rejected() {
        let mut repo = Repository::in_memory();
        assert!(matches!(
            repo.optimize_with(&spec(Problem::MinStorage, 2)),
            Err(VcsError::EmptyRepository)
        ));
    }
}
