#![warn(missing_docs)]

//! A prototype dataset version-management system.
//!
//! This is the system of the paper's §5: a Git/SVN-like interface for
//! dataset versioning, built over the optimizer (dsv-core) and the object
//! store (dsv-storage). Users `commit` dataset versions, `branch`, perform
//! merges themselves (the system records a commit with multiple parents —
//! "unlike traditional VCS … we let the user perform the merge"), and
//! `checkout` any version. [`Repository::optimize_with`] re-packs the
//! repository under any of the paper's six problems — solved by the
//! Table-1 solver, a named registry solver, or a portfolio of every
//! capable solver, per the given [`PlanSpec`] — trading storage for
//! recreation cost on demand. Commits are placed per a [`Placement`]
//! policy: greedy parent deltas (the paper's regime) or deduplicated
//! chunk manifests ([`Repository::in_memory_chunked`] /
//! [`Repository::init_chunked`]) whose checkout reassembles chunks
//! instead of replaying chains; chunked-placement repositories are
//! optimized in the three-mode hybrid model automatically.
//!
//! ```
//! use dsv_vcs::Repository;
//! use dsv_core::{PlanSpec, Problem, SolverChoice};
//!
//! let mut repo = Repository::in_memory();
//! let v0 = repo.commit("main", b"a,b\n1,2\n", "initial").unwrap();
//! repo.branch("exp", v0).unwrap();
//! let v1 = repo.commit("exp", b"a,b\n1,2\n3,4\n", "add row").unwrap();
//! assert_eq!(repo.checkout(v1).unwrap(), b"a,b\n1,2\n3,4\n");
//! let spec = PlanSpec::new(Problem::MinStorage)
//!     .solver(SolverChoice::Portfolio)
//!     .reveal_hops(4);
//! let report = repo.optimize_with(&spec).unwrap();
//! assert!(report.storage_after <= report.storage_before);
//! assert_eq!(report.provenance.solver, "mst"); // P1: MCA is exact
//! ```

pub mod commit;
pub mod error;
pub mod fsck;
pub mod optimize;
pub mod persist;
pub mod repo;
pub mod serve;

pub use commit::{CommitId, CommitMeta};
pub use dsv_core::{ModePolicy, PlanSpec, SolverChoice};
pub use error::VcsError;
pub use fsck::{FsckReport, Recovery};
pub use optimize::OptimizeReport;
pub use persist::RepoStore;
pub use repo::{Checkpoint, OnlineOptions, Placement, Repository};
pub use serve::{Dsvd, DsvdConfig};
