#![warn(missing_docs)]

//! A prototype dataset version-management system.
//!
//! This is the system of the paper's §5: a Git/SVN-like interface for
//! dataset versioning, built over the optimizer (dsv-core) and the object
//! store (dsv-storage). Users `commit` dataset versions, `branch`, perform
//! merges themselves (the system records a commit with multiple parents —
//! "unlike traditional VCS … we let the user perform the merge"), and
//! `checkout` any version. [`Repository::optimize`] re-packs the
//! repository under any of the paper's six problems, trading storage for
//! recreation cost on demand. Commits are placed per a [`Placement`]
//! policy: greedy parent deltas (the paper's regime) or deduplicated
//! chunk manifests ([`Repository::in_memory_chunked`] /
//! [`Repository::init_chunked`]) whose checkout reassembles chunks
//! instead of replaying chains.
//!
//! ```
//! use dsv_vcs::Repository;
//! use dsv_core::Problem;
//!
//! let mut repo = Repository::in_memory();
//! let v0 = repo.commit("main", b"a,b\n1,2\n", "initial").unwrap();
//! repo.branch("exp", v0).unwrap();
//! let v1 = repo.commit("exp", b"a,b\n1,2\n3,4\n", "add row").unwrap();
//! assert_eq!(repo.checkout(v1).unwrap(), b"a,b\n1,2\n3,4\n");
//! let report = repo.optimize(Problem::MinStorage, 4).unwrap();
//! assert!(report.storage_after <= report.storage_before);
//! ```

pub mod commit;
pub mod error;
pub mod optimize;
pub mod persist;
pub mod repo;

pub use commit::{CommitId, CommitMeta};
pub use error::VcsError;
pub use optimize::OptimizeReport;
pub use repo::{Placement, Repository};
