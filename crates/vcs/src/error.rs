//! VCS error type.

use dsv_chunk::ChunkError;
use dsv_core::SolveError;
use dsv_storage::StoreError;

/// Errors from repository operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcsError {
    /// The named branch does not exist.
    UnknownBranch(String),
    /// A branch with that name already exists.
    BranchExists(String),
    /// The commit id is out of range.
    UnknownCommit(u32),
    /// The repository has no commits yet.
    EmptyRepository,
    /// Merges need at least two distinct parents.
    DegenerateMerge,
    /// The object store failed.
    Store(StoreError),
    /// The chunking substrate failed.
    Chunk(ChunkError),
    /// The optimizer failed.
    Solve(SolveError),
}

impl std::fmt::Display for VcsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcsError::UnknownBranch(b) => write!(f, "unknown branch '{b}'"),
            VcsError::BranchExists(b) => write!(f, "branch '{b}' already exists"),
            VcsError::UnknownCommit(c) => write!(f, "unknown commit v{c}"),
            VcsError::EmptyRepository => write!(f, "repository has no commits"),
            VcsError::DegenerateMerge => write!(f, "merge requires two distinct parents"),
            VcsError::Store(e) => write!(f, "store error: {e}"),
            VcsError::Chunk(e) => write!(f, "chunking error: {e}"),
            VcsError::Solve(e) => write!(f, "optimizer error: {e}"),
        }
    }
}

impl std::error::Error for VcsError {}

impl From<StoreError> for VcsError {
    fn from(e: StoreError) -> Self {
        VcsError::Store(e)
    }
}

impl From<SolveError> for VcsError {
    fn from(e: SolveError) -> Self {
        VcsError::Solve(e)
    }
}

impl From<ChunkError> for VcsError {
    fn from(e: ChunkError) -> Self {
        // Store failures keep their original classification.
        match e {
            ChunkError::Store(s) => VcsError::Store(s),
            other => VcsError::Chunk(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(VcsError::UnknownBranch("dev".into())
            .to_string()
            .contains("dev"));
        assert!(VcsError::UnknownCommit(9).to_string().contains("v9"));
        let store_err: VcsError = StoreError::ChainTooLong.into();
        assert!(store_err.to_string().contains("chain"));
        let solve_err: VcsError = SolveError::EmptyInstance.into();
        assert!(solve_err.to_string().contains("versions"));
    }
}
