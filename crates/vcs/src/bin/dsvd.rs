//! `dsvd` — the dataset-versioning server daemon.
//!
//! Serves one on-disk repository over the `dsv-net` protocol:
//!
//! ```text
//! dsvd <repo-dir> [--addr <host:port>] [--workers <n>] [--cache-bytes <n>]
//!      [--max-frame <bytes>] [--read-timeout-ms <n>]
//!      [--threads <n>] [--trace] [--trace-json <path>]
//! dsvd <store-dir> --store-server [--addr <host:port>] [...]
//! ```
//!
//! The repository is opened once — after crash recovery: a pending
//! repack journal is rolled forward or back, the history is fsck'd, and
//! interrupted-commit orphans are collected, so a SIGKILL'd server
//! restarts clean. All connections share the repository. Commits and
//! optimizes serialize through a write lock (the commit queue) while
//! checkouts read concurrently, every checkout is served through one
//! shared checkout-cache arena (`--cache-bytes`, default 256 MiB), and
//! metadata is re-persisted after each mutation so a local `dsv` run on
//! the same directory sees remote commits once the server exits.
//!
//! `--addr` defaults to `127.0.0.1:7411`; port `0` picks a free port —
//! the bound address is printed either way (`dsvd: serving … at <addr>`)
//! so scripts can scrape it. `--workers` bounds concurrent connections
//! (default: the dsv-par thread count). The server runs until a client
//! sends the protocol `Shutdown` request (`dsv --remote <addr> shutdown`).
//!
//! `--store-server` serves a *bare object store* instead of a
//! repository: the directory holds content-addressed objects only (no
//! commit DAG, no plan), requests are the protocol-v3 `Store*` opcodes,
//! and repository opcodes are rejected with `BAD_REQUEST`. This is the
//! shard unit of the distributed storage tier — a front-end repository
//! initialized with `dsv init --remote-shards <addr,...>` routes each
//! object to one such server by id prefix. No crash recovery pass runs
//! (there is no history to verify); the store directory is created on
//! first start. `--cache-bytes` does not apply.
//!
//! `--trace` / `--trace-json` record the full serve span tree
//! (`serve → conn → decode/handle/encode`, with a per-opcode child under
//! each `handle`) exactly like the `dsv` CLI's global flags, and the
//! `net.requests` / `net.bytes_in` / `net.bytes_out` counters land in
//! the metrics registry.

use dsv_net::server::{Server, ServerOptions};
use dsv_net::{StoreService, StoreServiceConfig};
use dsv_obs as obs;
use dsv_storage::{FileStore, ObjectStore};
use dsv_vcs::{Dsvd, DsvdConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dsvd: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    root: PathBuf,
    addr: String,
    workers: usize,
    config: DsvdConfig,
    store_server: bool,
    trace: bool,
    trace_json: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:7411".to_owned();
    let mut workers = 0usize;
    let mut config = DsvdConfig::default();
    let mut store_server = false;
    let mut trace = false;
    let mut trace_json = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next().ok_or("--addr needs host:port")?.clone(),
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a value")?;
                workers = v.parse().map_err(|_| format!("invalid --workers '{v}'"))?;
            }
            "--cache-bytes" => {
                let v = iter.next().ok_or("--cache-bytes needs a value")?;
                config.cache_bytes = v
                    .parse()
                    .map_err(|_| format!("invalid --cache-bytes '{v}'"))?;
            }
            "--max-frame" => {
                let v = iter.next().ok_or("--max-frame needs a value (bytes)")?;
                config.max_frame = v
                    .parse()
                    .map_err(|_| format!("invalid --max-frame '{v}'"))?;
            }
            "--read-timeout-ms" => {
                let v = iter.next().ok_or("--read-timeout-ms needs a value")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("invalid --read-timeout-ms '{v}'"))?;
                config.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--threads" => {
                let v = iter.next().ok_or("--threads needs a value")?;
                let threads: usize = v.parse().map_err(|_| format!("invalid --threads '{v}'"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                dsv_par::set_thread_count(Some(threads));
            }
            "--store-server" => store_server = true,
            "--trace" => trace = true,
            "--trace-json" => {
                trace_json = Some(PathBuf::from(
                    iter.next().ok_or("--trace-json needs a path")?,
                ));
            }
            a if a.starts_with("--") => return Err(format!("unknown flag '{arg}'")),
            _ => positional.push(arg.clone()),
        }
    }
    let root = positional
        .first()
        .map(PathBuf::from)
        .ok_or("usage: dsvd <repo-dir> [--addr <host:port>] [--workers <n>]")?;
    Ok(Opts {
        root,
        addr,
        workers,
        config,
        store_server,
        trace,
        trace_json,
    })
}

fn run(args: &[String]) -> Result<(), String> {
    // Same deterministic fault shim as `dsv`: CI arms `DSV_FAULT` to
    // crash the daemon at an exact filesystem operation, then restarts
    // it to exercise the recovery path below.
    if std::env::var_os("DSV_FAULT").is_some() && dsv_storage::fault::install_from_env().is_none() {
        return Err(
            "invalid DSV_FAULT spec (want fail:N[:substr], tear:N:K[:substr], \
             or skipsync:N[:substr])"
                .into(),
        );
    }
    let opts = parse_opts(args)?;
    obs::set_metrics_enabled(true);
    let recorder = if opts.trace || opts.trace_json.is_some() {
        let r = Arc::new(obs::Recorder::new());
        obs::set_global_recorder(Some(Arc::clone(&r)));
        Some(r)
    } else {
        None
    };

    let server = Server::bind_with(
        &opts.addr,
        ServerOptions {
            workers: opts.workers,
            ..ServerOptions::default()
        },
    )
    .map_err(|e| format!("binding {}: {e}", opts.addr))?;
    if opts.store_server {
        // Bare store shard: content-addressed objects only, served via
        // the protocol-v3 `Store*` opcodes. There is no commit DAG here,
        // so no recovery pass — every stored object is self-verifying by
        // address, and puts are idempotent.
        let store = FileStore::open(&opts.root.join("objects"), true).map_err(|e| e.to_string())?;
        let objects = store.len();
        let service = StoreService::new(
            store,
            StoreServiceConfig {
                max_frame: opts.config.max_frame,
                read_timeout: opts.config.read_timeout,
            },
        );
        println!(
            "dsvd: store server {} ({objects} objects) at {} ({} workers, protocol v{})",
            opts.root.display(),
            server.local_addr(),
            server.workers(),
            dsv_net::PROTOCOL_VERSION
        );
        // Scripts poll this line before connecting; make sure it is
        // visible even when stdout is a pipe.
        use std::io::Write;
        let _ = std::io::stdout().flush();

        service.serve(&server);
    } else {
        // Crash recovery before serving: resolve any repack journal a
        // killed predecessor left behind, verify the history, and GC
        // orphans — a SIGKILL'd dsvd restarts into a pristine repository
        // or refuses to serve a corrupt one.
        let (repo, report) =
            dsv_vcs::fsck::recover_at(&opts.root, true).map_err(|e| e.to_string())?;
        match &report.recovery {
            Some(dsv_vcs::Recovery::Clean) | None => {}
            Some(rec) => println!("dsvd: recovery: {rec:?}"),
        }
        if report.orphans_removed > 0 {
            println!("dsvd: recovery: {} orphans removed", report.orphans_removed);
        }
        if !report.is_clean() {
            return Err(format!("repository fails fsck after recovery: {report}"));
        }
        let versions = repo.version_count();
        let dsvd = Dsvd::new(repo, opts.config.clone()).with_save_root(opts.root.clone());
        println!(
            "dsvd: serving {} ({versions} versions) at {} ({} workers, protocol v{})",
            opts.root.display(),
            server.local_addr(),
            server.workers(),
            dsv_net::PROTOCOL_VERSION
        );
        // Scripts poll this line before connecting; make sure it is
        // visible even when stdout is a pipe.
        use std::io::Write;
        let _ = std::io::stdout().flush();

        dsvd.serve(&server);
    }
    println!("dsvd: shutdown requested, exiting");

    if let Some(recorder) = recorder {
        obs::set_global_recorder(None);
        let tree = recorder.snapshot();
        if opts.trace && !tree.is_empty() {
            eprint!("{}", tree.render());
        }
        if let Some(path) = &opts.trace_json {
            std::fs::write(path, tree.to_json())
                .map_err(|e| format!("writing trace to {}: {e}", path.display()))?;
        }
    }
    Ok(())
}
