//! `dsv` — a command-line dataset version-control tool.
//!
//! The CLI face of the prototype system (the paper's §5 describes a
//! client/server variant; this is the single-machine equivalent):
//!
//! ```text
//! dsv init <repo-dir> [--shards <n> | --remote-shards <addr,...>]
//! dsv commit <repo-dir> <file> [-b branch] [-m message]
//!            [--online] [--online-hops <n>] [--theta <bytes>]
//! dsv checkout <repo-dir> <version>... [-o out-file] [--cache-bytes <n>]
//! dsv log <repo-dir> [branch]
//! dsv branch <repo-dir> <name> <version>
//! dsv branches <repo-dir>
//! dsv status <repo-dir>
//! dsv store <repo-dir> [--json]
//! dsv stats <repo-dir>
//! dsv solvers
//! dsv optimize <repo-dir> <p1|p2|p3|p4|p5|p6> [bound]
//!              [--solver <name>] [--portfolio] [--hybrid] [--binary]
//!              [--hops <n>] [--hop-bound <n>]
//! dsv fsck <repo-dir> [--repair]
//! dsv --threads <n> <any command ...>
//! dsv --trace [--trace-json <path>] <any command ...>
//! dsv --remote <host:port> <ping|commit|checkout|optimize|stats|store|fsck|shutdown> ...
//! ```
//!
//! `init --shards <n>` lays the object store out as `n` independent
//! shards (`objects/shard-<i>/…`) selected by object-id prefix; batch
//! writes (commit packs, optimize re-packs) then hit all shards
//! concurrently. The shard count is recorded in the repository metadata
//! (meta v3) and is a pure layout property — the stored bytes are
//! identical at every shard count. `init --remote-shards <addr,...>` is
//! the distributed variant: objects live on remote shard servers (`dsvd
//! --store-server`, one per address) instead of the local filesystem,
//! selected by the same id-prefix rule, and the topology is recorded in
//! the metadata (meta v4) so every later command redials the shards.
//! `store` prints the [`StoreStats`] snapshot: object/byte counts,
//! per-shard fill, dedup ratio, and the single-vs-batch operation
//! counters of this process.
//!
//! `commit --online` places the new version by bounded online
//! re-planning (the paper's online problem): the best delta base is
//! chosen from a `--online-hops` neighborhood of the parents instead of
//! the first parent alone, and no repack runs — under `--trace` the
//! commit shows an `online` span with `reveal`/`place` children and no
//! `pack`/`gc` phase. `--theta <bytes>` bounds the new version's
//! recreation cost (with or without `--online`); `dsv optimize` remains
//! the explicit slow path that revisits every placement.
//!
//! `checkout` accepts several versions at once; with `--cache-bytes <n>`
//! they are served through a bounded workload-aware checkout cache
//! (chain prefixes shared, per-version recreation work printed), the
//! serving configuration for hot Zipf-like read traffic.
//!
//! `optimize` bounds: p3/p4 take a storage budget in bytes; p5/p6 take a
//! recreation threshold in bytes. The solve goes through the planner:
//! `--solver` picks one registered solver by name (see `dsv solvers`),
//! `--portfolio` runs every capable solver and keeps the cheapest
//! feasible plan, and the default is the paper's Table-1 dispatch.
//! `--hybrid` forces the three-mode Full/Delta/Chunked model, `--binary`
//! forces the paper's binary model; with neither flag, a repository whose
//! placement policy is chunked is optimized hybrid automatically.
//! `--hops` widens/narrows how far around the commit DAG deltas are
//! revealed; `--hop-bound` is different — it caps the `hop` solver's
//! delta-chain length.
//!
//! `fsck` verifies the repository end to end: every stored object is
//! re-hashed against its content address, every version is materialized
//! through its recreation path, orphaned objects (debris from an
//! interrupted commit or repack) are detected, and a pending repack
//! journal is reported. `--repair` first resolves the journal (rolling
//! the interrupted repack forward or back), then collects orphans;
//! verification itself never mutates the store. The command exits
//! nonzero when the repository is not clean, so scripts can gate on it.
//!
//! `--threads <n>` (accepted anywhere on the command line) pins the
//! dsv-par work-stealing runtime to `n` workers for every parallel phase
//! — reveal diffs, chunk estimation, portfolio solves, and packing.
//! Results are identical at any thread count; the default is the
//! `DSV_THREADS` environment variable, falling back to the machine's
//! available parallelism.
//!
//! `--remote <host:port>` (accepted anywhere on the command line) routes
//! the command to a running `dsvd` server over the `dsv-net` protocol
//! instead of opening a repository locally; the repo-dir positional is
//! omitted since the server owns its repository. Output is identical to
//! the local command — remote checkouts are byte-for-byte the same data.
//! `--cache-bytes` is rejected remotely: every remote checkout is served
//! through the server's single shared cache arena. `dsv --remote <addr>
//! shutdown` stops the server.
//!
//! `--trace` (or `DSV_TRACE=1`) installs a [`dsv_obs`] span recorder
//! around the whole command and prints the aggregated call tree — wall
//! and self time per phase — to stderr when the command finishes.
//! `--trace-json <path>` writes the same tree as JSON. Both are accepted
//! anywhere on the command line and compose with `--threads`; the span
//! tree's *shape* is identical at every thread count. `store --json`
//! emits the [`StoreStats`] snapshot plus this process's metrics as
//! JSON; `stats` prints both in human form.

use dsv_core::solvers::{registry, Support};
use dsv_core::{ChunkingSpec, ModePolicy, PlanSpec, Problem, SolverChoice};
use dsv_net::proto::{OptimizeSummary, WireMode, WireSolver};
use dsv_obs as obs;
use dsv_storage::{FileStore, ObjectStore, ShardedStore, StoreStats, MAX_SHARDS};
use dsv_vcs::serve::summarize_report;
use dsv_vcs::{persist, CommitId, Placement, RepoStore, Repository};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dsv: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Deterministic fault injection for crash-consistency testing: a
    // `DSV_FAULT=fail:N[:substr]` (or `tear:`/`skipsync:`) spec arms the
    // storage-layer fault shim so CI can kill this process at an exact
    // filesystem operation. No-op when the variable is unset.
    if std::env::var_os("DSV_FAULT").is_some() && dsv_storage::fault::install_from_env().is_none() {
        return Err(
            "invalid DSV_FAULT spec (want fail:N[:substr], tear:N:K[:substr], \
             or skipsync:N[:substr])"
                .into(),
        );
    }
    // `--threads` and the trace flags are global (any command may hit a
    // parallel phase), so they are extracted before dispatch: `--threads`
    // pins the dsv-par runtime, the trace flags wrap the whole command in
    // a span recorder.
    let args = extract_threads(args)?;
    let (args, trace) = extract_trace(&args)?;
    let (args, remote) = extract_remote(&args)?;
    // Metrics are a single branch per update; keep them on so that
    // `store --json` and `stats` can report what this process did.
    obs::set_metrics_enabled(true);
    let recorder = if trace.enabled() {
        let r = Arc::new(obs::Recorder::new());
        obs::set_global_recorder(Some(Arc::clone(&r)));
        Some(r)
    } else {
        None
    };
    let mut result = match &remote {
        Some(addr) => dispatch_remote(&args, addr),
        None => dispatch(&args),
    };
    if let Some(recorder) = recorder {
        obs::set_global_recorder(None);
        let tree = recorder.snapshot();
        if trace.human && !tree.is_empty() {
            eprint!("{}", tree.render());
        }
        if let Some(path) = &trace.json {
            let write = std::fs::write(path, tree.to_json())
                .map_err(|e| format!("writing trace to {}: {e}", path.display()));
            result = result.and(write);
        }
    }
    result
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "init" => {
            // Parse and strip `--shards <n>` / `--remote-shards <addr,...>`
            // before resolving positionals, so `dsv init --shards 4 repo`
            // works and a missing value (or a flag swallowed as the repo
            // dir) cannot silently produce a flat layout — there is no
            // re-shard path later.
            let mut positional: Vec<String> = Vec::new();
            let mut shards: Option<usize> = None;
            let mut remote_shards: Option<Vec<String>> = None;
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                if arg == "--shards" {
                    let v = iter.next().ok_or("--shards needs a value")?;
                    match v.parse::<usize>() {
                        Ok(n) if (1..=MAX_SHARDS).contains(&n) => shards = Some(n),
                        _ => {
                            return Err(format!(
                                "invalid --shards '{v}' (need an integer in 1..={MAX_SHARDS})"
                            ))
                        }
                    }
                } else if arg == "--remote-shards" {
                    let v = iter
                        .next()
                        .ok_or("--remote-shards needs a comma-separated host:port list")?;
                    let addrs: Vec<String> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(str::to_owned)
                        .collect();
                    if addrs.is_empty() || addrs.len() > MAX_SHARDS {
                        return Err(format!(
                            "invalid --remote-shards '{v}' (need 1..={MAX_SHARDS} addresses)"
                        ));
                    }
                    remote_shards = Some(addrs);
                } else if arg.starts_with("--") {
                    return Err(format!("unknown init flag '{arg}' (see: dsv help)"));
                } else {
                    positional.push(arg.clone());
                }
            }
            if shards.is_some() && remote_shards.is_some() {
                return Err("--shards and --remote-shards are mutually exclusive".into());
            }
            let root = repo_dir(&positional, 1)?;
            if root.join("meta.dsv").exists() {
                return Err(format!("{} is already a repository", root.display()));
            }
            let objects = root.join("objects");
            let store = match (&shards, &remote_shards) {
                (None, None) => RepoStore::Flat(FileStore::open(&objects, true).map_err(stringify)?),
                (Some(n), None) => RepoStore::Sharded(
                    ShardedStore::open_sharded(&objects, *n, true).map_err(stringify)?,
                ),
                // Dial every shard server up front: an unreachable address
                // fails init instead of the first commit.
                (None, Some(addrs)) => {
                    RepoStore::Remote(persist::connect_remote_shards(addrs).map_err(stringify)?)
                }
                (Some(_), Some(_)) => unreachable!("rejected above"),
            };
            let repo: Repository<RepoStore> = Repository::init(store);
            persist::save(&repo, &root).map_err(stringify)?;
            match (&shards, &remote_shards) {
                (None, None) => println!("initialized empty dsv repository at {}", root.display()),
                (Some(n), None) => println!(
                    "initialized empty dsv repository at {} ({n} object shards)",
                    root.display()
                ),
                (_, Some(addrs)) => println!(
                    "initialized empty dsv repository at {} ({} remote shards: {})",
                    root.display(),
                    addrs.len(),
                    addrs.join(", ")
                ),
            }
            Ok(())
        }
        "commit" => {
            // Strip flags before resolving positionals so they may appear
            // anywhere: `dsv commit --online repo file` works.
            let mut positional: Vec<String> = Vec::new();
            let mut online = false;
            let mut hops: Option<usize> = None;
            let mut theta: Option<u64> = None;
            let mut branch = "main".to_owned();
            let mut message = "(no message)".to_owned();
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--online" => online = true,
                    "--online-hops" => {
                        let v = iter.next().ok_or("--online-hops needs a value")?;
                        hops = Some(
                            v.parse()
                                .map_err(|_| format!("invalid --online-hops '{v}'"))?,
                        );
                    }
                    "--theta" => {
                        let v = iter.next().ok_or("--theta needs a value (bytes)")?;
                        theta = Some(v.parse().map_err(|_| format!("invalid --theta '{v}'"))?);
                    }
                    "-b" => branch = iter.next().ok_or("-b needs a branch name")?.clone(),
                    "-m" => message = iter.next().ok_or("-m needs a message")?.clone(),
                    a if a.starts_with("--") => {
                        return Err(format!("unknown commit flag '{arg}' (see: dsv help)"))
                    }
                    _ => positional.push(arg.clone()),
                }
            }
            if hops.is_some() && !online {
                return Err("--online-hops requires --online".into());
            }
            let root = repo_dir(&positional, 1)?;
            let file = positional
                .get(2)
                .ok_or("usage: dsv commit <repo> <file> [--online] [--theta <bytes>]")?;
            let data = std::fs::read(file).map_err(|e| format!("reading {file}: {e}"))?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            let id = if online {
                let mut opts = dsv_vcs::OnlineOptions::default();
                if let Some(h) = hops {
                    opts.hops = h;
                }
                opts.max_recreation_bytes = theta;
                repo.commit_online(&branch, &data, &message, opts)
            } else {
                repo.commit_bounded(&branch, &data, &message, theta)
            }
            .map_err(stringify)?;
            persist::save(&repo, &root).map_err(stringify)?;
            let how = if online { ", online placement" } else { "" };
            println!("committed {id} on '{branch}' ({} bytes{how})", data.len());
            Ok(())
        }
        "checkout" => {
            let mut positional: Vec<String> = Vec::new();
            let mut cache_bytes: Option<u64> = None;
            let mut out_path: Option<String> = None;
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--cache-bytes" => {
                        let v = iter.next().ok_or("--cache-bytes needs a value")?;
                        cache_bytes = Some(
                            v.parse()
                                .map_err(|_| format!("invalid --cache-bytes '{v}'"))?,
                        );
                    }
                    "-o" => out_path = Some(iter.next().ok_or("-o needs a path")?.clone()),
                    a if a.starts_with("--") => {
                        return Err(format!("unknown checkout flag '{arg}' (see: dsv help)"))
                    }
                    _ => positional.push(arg.clone()),
                }
            }
            let root = repo_dir(&positional, 1)?;
            if positional.len() < 3 {
                return Err(
                    "usage: dsv checkout <repo> <version>... [-o out-file] [--cache-bytes <n>]"
                        .into(),
                );
            }
            let versions: Vec<CommitId> = positional[2..]
                .iter()
                .map(|s| parse_version(Some(s)))
                .collect::<Result<_, _>>()?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            let cache = cache_bytes.map(|b| repo.enable_checkout_cache(b));
            if versions.len() == 1 {
                let version = versions[0];
                let data = repo.checkout(version).map_err(stringify)?;
                match out_path {
                    Some(path) => {
                        std::fs::write(&path, &data).map_err(|e| e.to_string())?;
                        println!("checked out {version} to {path} ({} bytes)", data.len());
                    }
                    None => {
                        use std::io::Write;
                        std::io::stdout()
                            .write_all(&data)
                            .map_err(|e| e.to_string())?;
                    }
                }
            } else {
                // A multi-version sweep reports recreation work per
                // version instead of streaming contents — the mode that
                // makes `--cache-bytes` observable (prefix sharing, hits).
                if out_path.is_some() {
                    return Err("-o needs exactly one version".into());
                }
                let mut total = dsv_storage::RecreationWork::default();
                for &version in &versions {
                    let (data, work) = repo.checkout_measured(version).map_err(stringify)?;
                    total.add(work);
                    println!(
                        "{version}: {} bytes (read {}, cache hits {}, saved {})",
                        data.len(),
                        work.bytes_read,
                        work.cache_hits,
                        work.bytes_saved
                    );
                }
                println!(
                    "total: read {} bytes, {} cache hits, saved {} bytes",
                    total.bytes_read, total.cache_hits, total.bytes_saved
                );
                if let Some(cache) = cache {
                    let s = cache.stats();
                    println!(
                        "cache: {}/{} bytes used, {} entries, {} hits / {} misses, {} evictions",
                        s.bytes, s.budget_bytes, s.entries, s.hits, s.misses, s.evictions
                    );
                }
            }
            Ok(())
        }
        "log" => {
            let root = repo_dir(args, 1)?;
            let branch = args.get(2).map(String::as_str).unwrap_or("main");
            let repo = persist::load(&root, true).map_err(stringify)?;
            for meta in repo.log(branch).map_err(stringify)? {
                let merge = if meta.is_merge() { " (merge)" } else { "" };
                println!("{}{merge}  {} bytes  {}", meta.id, meta.size, meta.message);
            }
            Ok(())
        }
        "branch" => {
            let root = repo_dir(args, 1)?;
            let name = args
                .get(2)
                .ok_or("usage: dsv branch <repo> <name> <version>")?;
            let from = parse_version(args.get(3))?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            repo.branch(name, from).map_err(stringify)?;
            persist::save(&repo, &root).map_err(stringify)?;
            println!("branch '{name}' -> {from}");
            Ok(())
        }
        "branches" => {
            let root = repo_dir(args, 1)?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            for (name, head) in repo.branches() {
                println!("{name} -> {head}");
            }
            Ok(())
        }
        "status" => {
            let root = repo_dir(args, 1)?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            let plan = repo.current_plan();
            let materialized = plan
                .iter()
                .filter(|m| matches!(m, dsv_core::StorageMode::Materialized))
                .count();
            let chunked = plan.iter().filter(|m| m.is_chunked()).count();
            println!(
                "{} versions, {} branches, {} materialized, {} chunked, {} bytes on disk",
                repo.version_count(),
                repo.branches().count(),
                materialized,
                chunked,
                repo.storage_bytes()
            );
            Ok(())
        }
        "store" => {
            let json = args.iter().any(|a| a == "--json");
            let positional: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
            let root = repo_dir(&positional, 1)?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            let stats = repo.store().stats();
            if json {
                println!("{}", store_stats_json(&stats, repo.logical_bytes()));
            } else {
                print_store_stats(&stats, repo.logical_bytes());
            }
            Ok(())
        }
        "stats" => {
            let root = repo_dir(args, 1)?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            print_store_stats(&repo.store().stats(), repo.logical_bytes());
            let metrics = obs::metrics().snapshot();
            if !metrics.is_empty() {
                println!("metrics this process:");
                print!("{}", metrics.render());
            }
            Ok(())
        }
        "solvers" => {
            let (name_h, hybrid_h, problems_h) = ("name", "hybrid", "problems");
            println!("{name_h:<12} {hybrid_h:<8} {problems_h:<22} description");
            for solver in registry() {
                let mut problems = String::new();
                for (problem, label) in [
                    (Problem::MinStorage, "1"),
                    (Problem::MinRecreation, "2"),
                    (Problem::MinSumRecreationGivenStorage { beta: 0 }, "3"),
                    (Problem::MinMaxRecreationGivenStorage { beta: 0 }, "4"),
                    (Problem::MinStorageGivenSumRecreation { theta: 0 }, "5"),
                    (Problem::MinStorageGivenMaxRecreation { theta: 0 }, "6"),
                ] {
                    match solver.support(problem) {
                        Some(Support::Exact) => {
                            problems.push_str(label);
                            problems.push_str("(exact) ");
                        }
                        Some(Support::Heuristic) => {
                            problems.push_str(label);
                            problems.push(' ');
                        }
                        None => {}
                    }
                }
                println!(
                    "{:<12} {:<8} {:<22} {}",
                    solver.name(),
                    if solver.hybrid_capable() { "yes" } else { "no" },
                    problems.trim_end(),
                    solver.description()
                );
            }
            Ok(())
        }
        "optimize" => {
            let root = repo_dir(args, 1)?;
            let problem = parse_problem(args, 2)?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            let spec = parse_plan_spec(args, problem, repo.placement())?;
            // The journaled two-phase repack: a crash at any point leaves
            // either the old plan or the new one, and `dsv fsck --repair`
            // (or the next load) resolves the journal.
            let report = repo.optimize_durable(&spec, &root).map_err(stringify)?;
            print_optimize_summary(&summarize_report(&report));
            Ok(())
        }
        "fsck" => {
            let repair = args.iter().any(|a| a == "--repair");
            let positional: Vec<String> =
                args.iter().filter(|a| *a != "--repair").cloned().collect();
            let root = repo_dir(&positional, 1)?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            let report = if repair {
                dsv_vcs::fsck::fsck_repair(&mut repo, Some(&root)).map_err(stringify)?
            } else {
                dsv_vcs::fsck::fsck(&repo, Some(&root))
            };
            println!("{report}");
            if report.is_clean() {
                Ok(())
            } else {
                Err(if repair {
                    "repository is not clean after repair".into()
                } else {
                    "repository is not clean (try: dsv fsck --repair)".into()
                })
            }
        }
        "help" | "--help" | "-h" => {
            println!(
                "usage: dsv <init|commit|checkout|log|branch|branches|status|store|stats|solvers|optimize|fsck> ..."
            );
            println!("       dsv init <repo> [--shards <n>]  shard the object store n ways");
            println!(
                "       dsv init <repo> --remote-shards <addr,...>  store objects on remote \
                 shard servers (dsvd --store-server)"
            );
            println!(
                "       dsv commit <repo> <file> [--online] [--online-hops <n>] [--theta <bytes>]"
            );
            println!(
                "                    --online: place via bounded local re-planning (no repack)"
            );
            println!("                    --theta: cap the new version's recreation bytes");
            println!("       dsv checkout <repo> <version>... [-o out-file] [--cache-bytes <n>]");
            println!(
                "                    --cache-bytes: serve through a bounded workload-aware cache"
            );
            println!("       dsv store <repo> [--json]  print object-store stats (shard fill, dedup ratio)");
            println!("       dsv stats <repo>  store stats plus this process's metrics");
            println!("       dsv optimize <repo> <p1..p6> [bound] [--solver <name>] [--portfolio]");
            println!(
                "                    [--hybrid] [--binary] [--hops <reveal-n>] [--hop-bound <n>]"
            );
            println!(
                "       dsv fsck <repo> [--repair]  verify addresses, recreation paths, \
                 and journals; --repair resolves them"
            );
            println!(
                "       dsv --threads <n> ...  pin the parallel runtime's worker count \
                 (default: DSV_THREADS, then available cores)"
            );
            println!(
                "       dsv --trace ...  print a span tree of the command's phases to stderr \
                 (also: DSV_TRACE=1)"
            );
            println!("       dsv --trace-json <path> ...  write the span tree as JSON");
            println!(
                "       dsv --remote <host:port> ...  route the command to a dsvd server \
                 (no repo-dir; supports ping, commit, checkout, optimize, stats, store, \
                 fsck, shutdown)"
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try: dsv help)")),
    }
}

/// Routes a command over the `dsv-net` protocol to a `dsvd` server. The
/// repo-dir positional is omitted in remote mode — the server owns its
/// repository — and output is identical to the local command.
fn dispatch_remote(args: &[String], addr: &str) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "ping" | "commit" | "checkout" | "optimize" | "stats" | "store" | "fsck" | "shutdown" => {}
        other => {
            return Err(format!(
                "command '{other}' is not supported over --remote \
                 (supported: ping, commit, checkout, optimize, stats, store, fsck, shutdown)"
            ))
        }
    }
    let mut client =
        dsv_net::Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match cmd {
        "ping" => {
            client.ping().map_err(stringify)?;
            println!("pong from {addr} (protocol v{})", dsv_net::PROTOCOL_VERSION);
            Ok(())
        }
        "commit" => {
            let mut positional: Vec<String> = Vec::new();
            let mut online = false;
            let mut hops: Option<usize> = None;
            let mut theta: Option<u64> = None;
            let mut branch = "main".to_owned();
            let mut message = "(no message)".to_owned();
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--online" => online = true,
                    "--online-hops" => {
                        let v = iter.next().ok_or("--online-hops needs a value")?;
                        hops = Some(
                            v.parse()
                                .map_err(|_| format!("invalid --online-hops '{v}'"))?,
                        );
                    }
                    "--theta" => {
                        let v = iter.next().ok_or("--theta needs a value (bytes)")?;
                        theta = Some(v.parse().map_err(|_| format!("invalid --theta '{v}'"))?);
                    }
                    "-b" => branch = iter.next().ok_or("-b needs a branch name")?.clone(),
                    "-m" => message = iter.next().ok_or("-m needs a message")?.clone(),
                    a if a.starts_with("--") => {
                        return Err(format!("unknown commit flag '{arg}' (see: dsv help)"))
                    }
                    _ => positional.push(arg.clone()),
                }
            }
            if hops.is_some() && !online {
                return Err("--online-hops requires --online".into());
            }
            let file = positional
                .get(1)
                .ok_or("usage: dsv --remote <addr> commit <file> [--online] [--theta <bytes>]")?;
            let data = std::fs::read(file).map_err(|e| format!("reading {file}: {e}"))?;
            let hops = hops.unwrap_or(dsv_vcs::OnlineOptions::default().hops);
            let (id, bytes, online) = client
                .commit(&branch, &message, online, hops as u32, theta, data)
                .map_err(stringify)?;
            let how = if online { ", online placement" } else { "" };
            println!(
                "committed {} on '{branch}' ({bytes} bytes{how})",
                CommitId(id)
            );
            Ok(())
        }
        "checkout" => {
            let mut positional: Vec<String> = Vec::new();
            let mut out_path: Option<String> = None;
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--cache-bytes" => {
                        return Err(
                            "--cache-bytes is server-side with --remote: every remote checkout \
                             is served through the dsvd shared cache (see: dsvd --cache-bytes)"
                                .into(),
                        )
                    }
                    "-o" => out_path = Some(iter.next().ok_or("-o needs a path")?.clone()),
                    a if a.starts_with("--") => {
                        return Err(format!("unknown checkout flag '{arg}' (see: dsv help)"))
                    }
                    _ => positional.push(arg.clone()),
                }
            }
            if positional.len() < 2 {
                return Err(
                    "usage: dsv --remote <addr> checkout <version>... [-o out-file]".into(),
                );
            }
            let versions: Vec<CommitId> = positional[1..]
                .iter()
                .map(|s| parse_version(Some(s)))
                .collect::<Result<_, _>>()?;
            if versions.len() == 1 {
                let version = versions[0];
                let (data, _work) = client.checkout(version.0).map_err(stringify)?;
                match out_path {
                    Some(path) => {
                        std::fs::write(&path, &data).map_err(|e| e.to_string())?;
                        println!("checked out {version} to {path} ({} bytes)", data.len());
                    }
                    None => {
                        use std::io::Write;
                        std::io::stdout()
                            .write_all(&data)
                            .map_err(|e| e.to_string())?;
                    }
                }
            } else {
                if out_path.is_some() {
                    return Err("-o needs exactly one version".into());
                }
                let mut total = dsv_storage::RecreationWork::default();
                for &version in &versions {
                    let (data, work) = client.checkout(version.0).map_err(stringify)?;
                    total.add(work);
                    println!(
                        "{version}: {} bytes (read {}, cache hits {}, saved {})",
                        data.len(),
                        work.bytes_read,
                        work.cache_hits,
                        work.bytes_saved
                    );
                }
                println!(
                    "total: read {} bytes, {} cache hits, saved {} bytes",
                    total.bytes_read, total.cache_hits, total.bytes_saved
                );
            }
            Ok(())
        }
        "optimize" => {
            let problem = parse_problem(args, 1)?;
            let (solver, mode, reveal_hops, hop_bound) = parse_remote_plan(args)?;
            let summary = client
                .optimize(problem, solver, mode, reveal_hops, hop_bound)
                .map_err(stringify)?;
            print_optimize_summary(&summary);
            Ok(())
        }
        "stats" => {
            let summary = client.stats().map_err(stringify)?;
            print_store_stats(&summary.stats, summary.logical_bytes);
            if let Some(s) = summary.cache {
                println!(
                    "server cache: {}/{} bytes used, {} entries, {} hits / {} misses, {} evictions",
                    s.bytes, s.budget_bytes, s.entries, s.hits, s.misses, s.evictions
                );
            }
            Ok(())
        }
        "store" => {
            let json = args.iter().any(|a| a == "--json");
            let summary = client.stats().map_err(stringify)?;
            if json {
                println!(
                    "{}",
                    store_stats_json(&summary.stats, summary.logical_bytes)
                );
            } else {
                print_store_stats(&summary.stats, summary.logical_bytes);
            }
            Ok(())
        }
        "fsck" => {
            let repair = args.iter().any(|a| a == "--repair");
            let s = client.fsck(repair).map_err(stringify)?;
            match &s.recovery {
                None | Some(dsv_net::proto::WireRecovery::Clean) => {}
                Some(dsv_net::proto::WireRecovery::RolledForward { removed }) => {
                    println!("recovery: rolled repack forward ({removed} stale objects removed)")
                }
                Some(dsv_net::proto::WireRecovery::RolledBack { removed }) => {
                    println!("recovery: rolled repack back ({removed} new objects removed)")
                }
            }
            println!(
                "fsck: {} versions, {} objects checked; {} bad addresses, {} unreadable, \
                 {} orphans ({} removed){}; {}",
                s.versions_checked,
                s.objects_checked,
                s.bad_addresses,
                s.unreadable,
                s.orphans,
                s.orphans_removed,
                if s.journal_pending {
                    "; repack journal pending"
                } else {
                    ""
                },
                if s.clean { "clean" } else { "NOT CLEAN" }
            );
            if s.clean {
                Ok(())
            } else {
                Err(if repair {
                    "remote repository is not clean after repair".into()
                } else {
                    "remote repository is not clean (try: dsv --remote <addr> fsck --repair)".into()
                })
            }
        }
        "shutdown" => {
            client.shutdown().map_err(stringify)?;
            println!("server at {addr} shutting down");
            Ok(())
        }
        _ => unreachable!("filtered above"),
    }
}

/// Remote flavor of [`parse_plan_spec`]: same flags, same validation and
/// defaults, but producing the wire selectors the server rebuilds its
/// `PlanSpec` from. Solver-name typos are still caught client-side so
/// the error matches the local one before any network round-trip.
fn parse_remote_plan(args: &[String]) -> Result<(WireSolver, WireMode, u32, Option<u32>), String> {
    const VALUE_FLAGS: [&str; 3] = ["--solver", "--hops", "--hop-bound"];
    const BARE_FLAGS: [&str; 3] = ["--portfolio", "--hybrid", "--binary"];
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
        } else if arg.starts_with("--") && !BARE_FLAGS.contains(&arg.as_str()) {
            return Err(format!("unknown optimize flag '{arg}' (see: dsv help)"));
        }
    }
    for flag in VALUE_FLAGS {
        match args.iter().filter(|a| *a == flag).count() {
            0 => {}
            1 => match flag_value(args, flag) {
                None => return Err(format!("{flag} needs a value")),
                Some(v) if v.starts_with("--") => {
                    return Err(format!("{flag} needs a value, got flag '{v}'"))
                }
                Some(_) => {}
            },
            _ => return Err(format!("{flag} given more than once")),
        }
    }
    let reveal_hops = match flag_value(args, "--hops") {
        Some(h) => h
            .parse::<u32>()
            .map_err(|_| format!("invalid --hops '{h}'"))?,
        None => 5,
    };
    let hop_bound = match flag_value(args, "--hop-bound") {
        Some(h) => Some(
            h.parse::<u32>()
                .map_err(|_| format!("invalid --hop-bound '{h}'"))?,
        ),
        None => None,
    };
    let portfolio = args.iter().any(|a| a == "--portfolio");
    let named = flag_value(args, "--solver");
    if portfolio && named.is_some() {
        return Err("--portfolio and --solver are mutually exclusive".into());
    }
    let solver = if portfolio {
        WireSolver::Portfolio
    } else if let Some(name) = named {
        if dsv_core::solvers::by_name(name).is_none() {
            return Err(format!(
                "no solver named '{name}' in the registry (see: dsv solvers)"
            ));
        }
        WireSolver::Named(name.to_owned())
    } else {
        WireSolver::Auto
    };
    let hybrid = args.iter().any(|a| a == "--hybrid");
    let binary = args.iter().any(|a| a == "--binary");
    if hybrid && binary {
        return Err("--hybrid and --binary are mutually exclusive".into());
    }
    let mode = if hybrid {
        // The server substitutes its own chunker granularity when its
        // placement is chunked, mirroring the local rule.
        let c = ChunkingSpec::default();
        WireMode::Hybrid {
            min_size: c.min_size as u64,
            avg_size: c.avg_size as u64,
            max_size: c.max_size as u64,
        }
    } else if binary {
        WireMode::Binary
    } else {
        WireMode::Auto
    };
    Ok((solver, mode, reveal_hops, hop_bound))
}

/// Renders an optimize outcome — the one code path for both the local
/// `optimize` command (via [`summarize_report`]) and the remote one (the
/// summary as decoded off the wire), keeping their output identical.
fn print_optimize_summary(s: &OptimizeSummary) {
    println!(
        "{}: {} -> {} bytes on disk ({} materialized, {} chunked, planned maxR {})",
        s.problem,
        s.storage_before,
        s.storage_after,
        s.materialized,
        s.chunked,
        s.planned_max_recreation
    );
    if s.portfolio {
        println!(
            "portfolio: {} candidates, winner {}",
            s.candidates.len(),
            s.solver
        );
        for c in &s.candidates {
            match &c.outcome {
                Ok(n) => println!(
                    "  {:<12} objective {} (C {}, ΣR {}, maxR {}){}",
                    c.solver,
                    n.objective,
                    n.storage,
                    n.sum_recreation,
                    n.max_recreation,
                    if n.feasible { "" } else { "  [infeasible]" }
                ),
                Err(e) => println!("  {:<12} error: {e}", c.solver),
            }
        }
    } else {
        println!(
            "solver: {}{}",
            s.solver,
            if s.feasible { "" } else { "  [infeasible]" }
        );
    }
}

/// Renders a [`StoreStats`] snapshot — works for any `ObjectStore`
/// (memory or file, flat or sharded); `logical_bytes` is the raw size of
/// all committed versions, giving the dedup/delta ratio.
fn print_store_stats(stats: &StoreStats, logical_bytes: u64) {
    let layout = if stats.shards.is_empty() {
        "flat".to_owned()
    } else {
        format!("{} shards", stats.shards.len())
    };
    println!(
        "{} objects, {} bytes on disk ({layout})",
        stats.objects, stats.bytes
    );
    if stats.bytes > 0 {
        println!(
            "dedup ratio: {:.2}x ({logical_bytes} logical bytes)",
            logical_bytes as f64 / stats.bytes as f64
        );
    }
    if !stats.shards.is_empty() {
        println!(
            "shard fill (imbalance {:.2}, 1.00 = even):",
            stats.shard_imbalance()
        );
        for (i, s) in stats.shards.iter().enumerate() {
            let pct = if stats.objects > 0 {
                100.0 * s.objects as f64 / stats.objects as f64
            } else {
                0.0
            };
            println!(
                "  shard-{i:<3} {:>8} objects {:>12} bytes  {pct:>5.1}%",
                s.objects, s.bytes
            );
        }
    }
    let ops = &stats.ops;
    println!(
        "ops this process: {} put / {} get single; {} put_batch ({} objects), \
         {} get_batch ({} objects), {} removes",
        ops.puts,
        ops.gets,
        ops.batch_puts,
        ops.batch_put_objects,
        ops.batch_gets,
        ops.batch_get_objects,
        ops.removes
    );
}

/// Strips a global `--threads <n>` flag from `args`, pinning the dsv-par
/// runtime's worker count when present (equivalent to `DSV_THREADS=<n>`).
fn extract_threads(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            let value = iter.next().ok_or("--threads needs a value")?;
            let threads: usize = value
                .parse()
                .map_err(|_| format!("invalid --threads '{value}'"))?;
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            dsv_par::set_thread_count(Some(threads));
        } else {
            out.push(arg.clone());
        }
    }
    Ok(out)
}

/// Strips a global `--remote <host:port>` flag. When present, the
/// command is routed to a `dsvd` server over the wire protocol instead
/// of opening a repository locally (see [`dispatch_remote`]).
fn extract_remote(args: &[String]) -> Result<(Vec<String>, Option<String>), String> {
    let mut out = Vec::with_capacity(args.len());
    let mut remote = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--remote" {
            let value = iter.next().ok_or("--remote needs host:port")?;
            if remote.is_some() {
                return Err("--remote given more than once".into());
            }
            remote = Some(value.clone());
        } else {
            out.push(arg.clone());
        }
    }
    Ok((out, remote))
}

/// Global tracing options stripped from the command line by
/// [`extract_trace`].
struct TraceOpts {
    /// Print the rendered span tree to stderr after the command.
    human: bool,
    /// Write the span tree as JSON to this path after the command.
    json: Option<PathBuf>,
}

impl TraceOpts {
    fn enabled(&self) -> bool {
        self.human || self.json.is_some()
    }
}

/// Strips the global `--trace` / `--trace-json <path>` flags from `args`.
/// `DSV_TRACE=1` (or `true`) in the environment is equivalent to
/// `--trace`, mirroring how `DSV_THREADS` backs `--threads`.
fn extract_trace(args: &[String]) -> Result<(Vec<String>, TraceOpts), String> {
    let mut out = Vec::with_capacity(args.len());
    let mut human = false;
    let mut json = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--trace" {
            human = true;
        } else if arg == "--trace-json" {
            let value = iter.next().ok_or("--trace-json needs a path")?;
            json = Some(PathBuf::from(value));
        } else {
            out.push(arg.clone());
        }
    }
    if !human {
        human = std::env::var("DSV_TRACE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
    }
    Ok((out, TraceOpts { human, json }))
}

/// JSON form of [`print_store_stats`] plus the process's metrics
/// snapshot — everything is numeric except metric names, which
/// [`dsv_obs`] escapes itself.
fn store_stats_json(stats: &StoreStats, logical_bytes: u64) -> String {
    let shards: Vec<String> = stats
        .shards
        .iter()
        .map(|s| {
            format!(
                "{{\"objects\": {}, \"bytes\": {}, \"batch_ms\": {:.3}}}",
                s.objects,
                s.bytes,
                s.batch_ns as f64 / 1e6
            )
        })
        .collect();
    let ops = &stats.ops;
    format!(
        "{{\"objects\": {}, \"bytes\": {}, \"logical_bytes\": {logical_bytes}, \
         \"shards\": [{}], \
         \"ops\": {{\"puts\": {}, \"gets\": {}, \"batch_puts\": {}, \"batch_put_objects\": {}, \
         \"batch_gets\": {}, \"batch_get_objects\": {}, \"removes\": {}, \
         \"put_objects\": {}, \"get_objects\": {}}}, \
         \"metrics\": {}}}",
        stats.objects,
        stats.bytes,
        shards.join(", "),
        ops.puts,
        ops.gets,
        ops.batch_puts,
        ops.batch_put_objects,
        ops.batch_gets,
        ops.batch_get_objects,
        ops.removes,
        ops.put_objects(),
        ops.get_objects(),
        obs::metrics().snapshot().to_json()
    )
}

fn repo_dir(args: &[String], idx: usize) -> Result<PathBuf, String> {
    args.get(idx)
        .map(|s| Path::new(s).to_path_buf())
        .ok_or_else(|| "missing repository directory".to_owned())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_version(arg: Option<&String>) -> Result<CommitId, String> {
    let s = arg.ok_or("missing version (e.g. v3)")?;
    let digits = s.strip_prefix('v').unwrap_or(s);
    digits
        .parse::<u32>()
        .map(CommitId)
        .map_err(|_| format!("invalid version '{s}'"))
}

fn parse_plan_spec(
    args: &[String],
    problem: Problem,
    placement: Placement,
) -> Result<PlanSpec, String> {
    // Reject misspelled/valueless flags outright: a typo silently falling
    // back to the default solve would misreport what was optimized.
    const VALUE_FLAGS: [&str; 3] = ["--solver", "--hops", "--hop-bound"];
    const BARE_FLAGS: [&str; 3] = ["--portfolio", "--hybrid", "--binary"];
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
        } else if arg.starts_with("--") && !BARE_FLAGS.contains(&arg.as_str()) {
            return Err(format!("unknown optimize flag '{arg}' (see: dsv help)"));
        }
    }
    for flag in VALUE_FLAGS {
        match args.iter().filter(|a| *a == flag).count() {
            0 => {}
            1 => match flag_value(args, flag) {
                None => return Err(format!("{flag} needs a value")),
                Some(v) if v.starts_with("--") => {
                    return Err(format!("{flag} needs a value, got flag '{v}'"))
                }
                Some(_) => {}
            },
            _ => return Err(format!("{flag} given more than once")),
        }
    }
    let mut spec = PlanSpec::new(problem);
    match flag_value(args, "--hops") {
        Some(h) => {
            let hops = h
                .parse::<usize>()
                .map_err(|_| format!("invalid --hops '{h}'"))?;
            spec = spec.reveal_hops(hops);
        }
        None => spec = spec.reveal_hops(5),
    }
    if let Some(h) = flag_value(args, "--hop-bound") {
        let bound = h
            .parse::<u32>()
            .map_err(|_| format!("invalid --hop-bound '{h}'"))?;
        spec = spec.hop_bound(bound);
    }
    let portfolio = args.iter().any(|a| a == "--portfolio");
    let solver = flag_value(args, "--solver");
    if portfolio && solver.is_some() {
        return Err("--portfolio and --solver are mutually exclusive".into());
    }
    if portfolio {
        spec = spec.solver(SolverChoice::Portfolio);
    } else if let Some(name) = solver {
        // Catch typos before the repository is loaded and re-diffed.
        if dsv_core::solvers::by_name(name).is_none() {
            return Err(format!(
                "no solver named '{name}' in the registry (see: dsv solvers)"
            ));
        }
        spec = spec.solver(SolverChoice::named(name));
    }
    let hybrid = args.iter().any(|a| a == "--hybrid");
    let binary = args.iter().any(|a| a == "--binary");
    if hybrid && binary {
        return Err("--hybrid and --binary are mutually exclusive".into());
    }
    if hybrid {
        // A chunked-placement repository keeps its own chunker
        // parameters; forcing hybrid must not re-chunk it at a different
        // granularity.
        let chunking = match placement {
            Placement::Chunked(params) => params.into(),
            Placement::GreedyDelta => ChunkingSpec::default(),
        };
        spec = spec.modes(ModePolicy::Hybrid(chunking));
    } else if binary {
        spec = spec.modes(ModePolicy::Binary);
    }
    Ok(spec)
}

fn parse_problem(args: &[String], idx: usize) -> Result<Problem, String> {
    let which = args.get(idx).map(String::as_str).unwrap_or("p1");
    let bound = || -> Result<u64, String> {
        args.get(idx + 1)
            .ok_or_else(|| format!("{which} needs a bound in bytes"))?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    };
    Ok(match which {
        "p1" => Problem::MinStorage,
        "p2" => Problem::MinRecreation,
        "p3" => Problem::MinSumRecreationGivenStorage { beta: bound()? },
        "p4" => Problem::MinMaxRecreationGivenStorage { beta: bound()? },
        "p5" => Problem::MinStorageGivenSumRecreation { theta: bound()? },
        "p6" => Problem::MinStorageGivenMaxRecreation { theta: bound()? },
        other => return Err(format!("unknown problem '{other}' (p1..p6)")),
    })
}

fn stringify(e: impl std::fmt::Display) -> String {
    e.to_string()
}
