//! `dsv` — a command-line dataset version-control tool.
//!
//! The CLI face of the prototype system (the paper's §5 describes a
//! client/server variant; this is the single-machine equivalent):
//!
//! ```text
//! dsv init <repo-dir>
//! dsv commit <repo-dir> <file> [-b branch] [-m message]
//! dsv checkout <repo-dir> <version> [-o out-file]
//! dsv log <repo-dir> [branch]
//! dsv branch <repo-dir> <name> <version>
//! dsv branches <repo-dir>
//! dsv status <repo-dir>
//! dsv optimize <repo-dir> <p1|p2|p3|p4|p5|p6> [bound]
//! ```
//!
//! `optimize` bounds: p3/p4 take a storage budget in bytes; p5/p6 take a
//! recreation threshold in bytes.

use dsv_core::Problem;
use dsv_storage::FileStore;
use dsv_vcs::{persist, CommitId, Repository};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dsv: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "init" => {
            let root = repo_dir(args, 1)?;
            if root.join("meta.dsv").exists() {
                return Err(format!("{} is already a repository", root.display()));
            }
            let store = FileStore::open(&root.join("objects"), true).map_err(stringify)?;
            let repo: Repository<FileStore> = Repository::init(store);
            persist::save(&repo, &root).map_err(stringify)?;
            println!("initialized empty dsv repository at {}", root.display());
            Ok(())
        }
        "commit" => {
            let root = repo_dir(args, 1)?;
            let file = args.get(2).ok_or("usage: dsv commit <repo> <file>")?;
            let branch = flag_value(args, "-b").unwrap_or("main");
            let message = flag_value(args, "-m").unwrap_or("(no message)");
            let data = std::fs::read(file).map_err(|e| format!("reading {file}: {e}"))?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            let id = repo.commit(branch, &data, message).map_err(stringify)?;
            persist::save(&repo, &root).map_err(stringify)?;
            println!("committed {id} on '{branch}' ({} bytes)", data.len());
            Ok(())
        }
        "checkout" => {
            let root = repo_dir(args, 1)?;
            let version = parse_version(args.get(2))?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            let data = repo.checkout(version).map_err(stringify)?;
            match flag_value(args, "-o") {
                Some(path) => {
                    std::fs::write(path, &data).map_err(|e| e.to_string())?;
                    println!("checked out {version} to {path} ({} bytes)", data.len());
                }
                None => {
                    use std::io::Write;
                    std::io::stdout()
                        .write_all(&data)
                        .map_err(|e| e.to_string())?;
                }
            }
            Ok(())
        }
        "log" => {
            let root = repo_dir(args, 1)?;
            let branch = args.get(2).map(String::as_str).unwrap_or("main");
            let repo = persist::load(&root, true).map_err(stringify)?;
            for meta in repo.log(branch).map_err(stringify)? {
                let merge = if meta.is_merge() { " (merge)" } else { "" };
                println!("{}{merge}  {} bytes  {}", meta.id, meta.size, meta.message);
            }
            Ok(())
        }
        "branch" => {
            let root = repo_dir(args, 1)?;
            let name = args
                .get(2)
                .ok_or("usage: dsv branch <repo> <name> <version>")?;
            let from = parse_version(args.get(3))?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            repo.branch(name, from).map_err(stringify)?;
            persist::save(&repo, &root).map_err(stringify)?;
            println!("branch '{name}' -> {from}");
            Ok(())
        }
        "branches" => {
            let root = repo_dir(args, 1)?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            for (name, head) in repo.branches() {
                println!("{name} -> {head}");
            }
            Ok(())
        }
        "status" => {
            let root = repo_dir(args, 1)?;
            let repo = persist::load(&root, true).map_err(stringify)?;
            let plan = repo.current_plan();
            let materialized = plan
                .iter()
                .filter(|m| matches!(m, dsv_core::StorageMode::Materialized))
                .count();
            let chunked = plan.iter().filter(|m| m.is_chunked()).count();
            println!(
                "{} versions, {} branches, {} materialized, {} chunked, {} bytes on disk",
                repo.version_count(),
                repo.branches().count(),
                materialized,
                chunked,
                repo.storage_bytes()
            );
            Ok(())
        }
        "optimize" => {
            let root = repo_dir(args, 1)?;
            let problem = parse_problem(args)?;
            let mut repo = persist::load(&root, true).map_err(stringify)?;
            let report = repo.optimize(problem, 5).map_err(stringify)?;
            persist::save(&repo, &root).map_err(stringify)?;
            println!(
                "{}: {} -> {} bytes on disk ({} materialized, planned maxR {})",
                report.problem,
                report.storage_before,
                report.storage_after,
                report.materialized,
                report.planned_max_recreation
            );
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("usage: dsv <init|commit|checkout|log|branch|branches|status|optimize> ...");
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try: dsv help)")),
    }
}

fn repo_dir(args: &[String], idx: usize) -> Result<PathBuf, String> {
    args.get(idx)
        .map(|s| Path::new(s).to_path_buf())
        .ok_or_else(|| "missing repository directory".to_owned())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_version(arg: Option<&String>) -> Result<CommitId, String> {
    let s = arg.ok_or("missing version (e.g. v3)")?;
    let digits = s.strip_prefix('v').unwrap_or(s);
    digits
        .parse::<u32>()
        .map(CommitId)
        .map_err(|_| format!("invalid version '{s}'"))
}

fn parse_problem(args: &[String]) -> Result<Problem, String> {
    let which = args.get(2).map(String::as_str).unwrap_or("p1");
    let bound = || -> Result<u64, String> {
        args.get(3)
            .ok_or_else(|| format!("{which} needs a bound in bytes"))?
            .parse::<u64>()
            .map_err(|e| e.to_string())
    };
    Ok(match which {
        "p1" => Problem::MinStorage,
        "p2" => Problem::MinRecreation,
        "p3" => Problem::MinSumRecreationGivenStorage { beta: bound()? },
        "p4" => Problem::MinMaxRecreationGivenStorage { beta: bound()? },
        "p5" => Problem::MinStorageGivenSumRecreation { theta: bound()? },
        "p6" => Problem::MinStorageGivenMaxRecreation { theta: bound()? },
        other => return Err(format!("unknown problem '{other}' (p1..p6)")),
    })
}

fn stringify(e: impl std::fmt::Display) -> String {
    e.to_string()
}
