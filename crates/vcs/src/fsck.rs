//! Integrity checking and crash recovery (`dsv fsck`).
//!
//! The crash model (see [`crate::persist`]) guarantees that a crash at
//! any point leaves a *loadable* repository whose history is either
//! fully-old-plan or fully-new-plan — but it deliberately leaves debris
//! behind: orphaned objects from an interrupted commit or repack, and a
//! pending `repack.journal` naming an intent that may or may not have
//! become durable. This module turns that debris back into a pristine
//! repository:
//!
//! - [`fsck`] verifies every content address (fetch + re-hash), walks
//!   every version's recreation path to full materialization, and — for
//!   stores that can enumerate ([`ObjectStore::object_ids`]) — reports
//!   objects no version references.
//! - [`recover`] resolves a pending repack journal: if the loaded
//!   metadata already references the journaled new plan the repack is
//!   rolled *forward* (the interrupted GC finishes); otherwise it is
//!   rolled *back* (unreferenced new objects are dropped). Either way
//!   the journal is cleared. `dsvd` runs this at startup before serving.
//! - [`fsck_repair`] = recover + fsck + orphan GC.
//!
//! All three are deterministic and idempotent: running them twice (or
//! crashing *during* repair and re-running) converges to the same clean
//! state, because every destructive step removes only objects outside
//! the referenced closure.

use crate::error::VcsError;
use crate::persist;
use crate::repo::Repository;
use dsv_obs as obs;
use dsv_storage::{Materializer, Object, ObjectId, ObjectStore};
use std::collections::HashSet;
use std::fmt;
use std::path::Path;

/// What [`recover`] found and did about a pending repack journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// No journal: the last shutdown completed every repack it started.
    Clean,
    /// The metadata swap was durable before the crash; the interrupted
    /// GC of the old plan's objects was finished now.
    RolledForward {
        /// Stale objects removed to finish the interrupted GC.
        removed: usize,
    },
    /// The crash hit before the metadata swap became durable; the new
    /// plan's unreferenced objects were dropped, returning the store to
    /// the old plan exactly.
    RolledBack {
        /// Orphaned new-plan objects removed.
        removed: usize,
    },
}

/// Structured result of an [`fsck`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Versions whose recreation path was walked to materialization.
    pub versions_checked: usize,
    /// Objects fetched and re-hashed against their content address.
    pub objects_checked: usize,
    /// Objects whose bytes no longer hash to their address.
    pub bad_addresses: Vec<ObjectId>,
    /// Versions that could not be materialized, with the failure.
    pub unreadable: Vec<(u32, String)>,
    /// Stored objects referenced by no version (commit/repack debris).
    /// Empty when the store cannot enumerate its contents.
    pub orphans: Vec<ObjectId>,
    /// A repack journal is pending — run [`recover`] (or
    /// `fsck --repair`) to resolve it.
    pub journal_pending: bool,
    /// Orphans removed by [`fsck_repair`] (0 for read-only checks).
    pub orphans_removed: usize,
    /// What journal recovery did (None for read-only checks).
    pub recovery: Option<Recovery>,
}

impl FsckReport {
    /// True when the repository needs no repair: every address verifies,
    /// every version materializes, nothing is orphaned, and no repack
    /// journal is pending.
    pub fn is_clean(&self) -> bool {
        self.bad_addresses.is_empty()
            && self.unreadable.is_empty()
            && self.orphans.is_empty()
            && !self.journal_pending
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fsck: {} versions, {} objects checked",
            self.versions_checked, self.objects_checked
        )?;
        if let Some(rec) = &self.recovery {
            match rec {
                Recovery::Clean => {}
                Recovery::RolledForward { removed } => {
                    write!(f, "; journal rolled forward ({removed} stale removed)")?
                }
                Recovery::RolledBack { removed } => {
                    write!(f, "; journal rolled back ({removed} orphans removed)")?
                }
            }
        }
        if !self.bad_addresses.is_empty() {
            write!(f, "; {} BAD ADDRESSES", self.bad_addresses.len())?;
        }
        if !self.unreadable.is_empty() {
            write!(f, "; {} UNREADABLE VERSIONS", self.unreadable.len())?;
        }
        if self.orphans_removed > 0 {
            write!(f, "; {} orphans removed", self.orphans_removed)?;
        } else if !self.orphans.is_empty() {
            write!(f, "; {} orphans", self.orphans.len())?;
        }
        if self.journal_pending {
            write!(f, "; REPACK JOURNAL PENDING")?;
        }
        write!(
            f,
            "; {}",
            if self.is_clean() {
                "clean"
            } else {
                "NOT CLEAN"
            }
        )
    }
}

/// The full set of object ids the repository's history references: every
/// version's object plus, for chunk manifests, the chunk objects they
/// name. Delta bases are themselves version objects, so the version list
/// already covers them.
fn referenced_closure<S: ObjectStore>(repo: &Repository<S>) -> HashSet<ObjectId> {
    let mut closure: HashSet<ObjectId> = repo.objects.iter().copied().collect();
    for id in &repo.objects {
        if let Ok(Object::Chunked { chunks }) = repo.store.get(*id) {
            closure.extend(chunks);
        }
    }
    closure
}

/// Read-only integrity check; see the module docs for what it covers.
/// Pass the persistence root as `root` to also flag a pending repack
/// journal (`None` for purely in-memory repositories).
pub fn fsck<S: ObjectStore>(repo: &Repository<S>, root: Option<&Path>) -> FsckReport {
    let _span = obs::span!("fsck", versions = repo.version_count()).entered();
    obs::counter!("fsck.runs", 1);
    let mut report = FsckReport::default();

    // 1. Every stored object's bytes must hash back to its address. When
    // the store can enumerate, check everything it holds (catching
    // corrupt orphans too); otherwise check the referenced closure.
    let closure = referenced_closure(repo);
    let enumerated = repo.store.object_ids();
    let to_check: Vec<ObjectId> = if enumerated.is_empty() && repo.store.len() > 0 {
        closure.iter().copied().collect()
    } else {
        enumerated.clone()
    };
    for id in &to_check {
        report.objects_checked += 1;
        match repo.store.get(*id) {
            Ok(obj) if obj.id() == *id => {}
            _ => report.bad_addresses.push(*id),
        }
    }
    report.bad_addresses.sort();

    // 2. Every version must materialize: walk its full recreation path
    // (delta chain or chunk reassembly) without a cache, so the check
    // exercises the cold store.
    let m = Materializer::new(&repo.store);
    for (v, id) in repo.objects.iter().enumerate() {
        report.versions_checked += 1;
        if let Err(e) = m.materialize(*id) {
            report.unreadable.push((v as u32, e.to_string()));
        }
    }

    // 3. Orphans: enumerable stores only.
    let mut orphans: Vec<ObjectId> = enumerated
        .into_iter()
        .filter(|id| !closure.contains(id))
        .collect();
    orphans.sort();
    report.orphans = orphans;

    // 4. Pending repack journal.
    if let Some(root) = root {
        report.journal_pending = !matches!(persist::read_journal(root), Ok(None));
    }
    report
}

/// Resolves a pending repack journal at `root`, if any (see
/// [`Recovery`]). Safe to call on a clean repository; idempotent under
/// crashes — every removal targets only objects outside the referenced
/// closure, and the journal is cleared last.
pub fn recover<S: ObjectStore>(
    repo: &mut Repository<S>,
    root: &Path,
) -> Result<Recovery, VcsError> {
    let Some(journal) = persist::read_journal(root)? else {
        return Ok(Recovery::Clean);
    };
    let _span = obs::span!("fsck.recover").entered();
    let closure = referenced_closure(repo);
    let recovery = if repo.objects == journal.new_objects {
        // The metadata swap became durable: the crash hit during (or
        // before) the stale-object GC. Finish it. Content addressing can
        // make a "stale" id live again under the new plan, so filter by
        // the closure rather than trusting the journal blindly.
        let stale: Vec<ObjectId> = journal
            .stale
            .iter()
            .copied()
            .filter(|id| !closure.contains(id))
            .collect();
        repo.store.remove_batch(&stale);
        Recovery::RolledForward {
            removed: stale.len(),
        }
    } else {
        // The swap never became durable: disk metadata still names the
        // old plan, so the journaled new objects (and any chunks only
        // they reference) are orphans. Drop the ones the old plan does
        // not also reference.
        let mut new_side: HashSet<ObjectId> = journal.new_objects.iter().copied().collect();
        for id in &journal.new_objects {
            if let Ok(Object::Chunked { chunks }) = repo.store.get(*id) {
                new_side.extend(chunks);
            }
        }
        let drop: Vec<ObjectId> = new_side
            .into_iter()
            .filter(|id| !closure.contains(id))
            .collect();
        repo.store.remove_batch(&drop);
        Recovery::RolledBack {
            removed: drop.len(),
        }
    };
    persist::clear_journal(root)?;
    Ok(recovery)
}

/// Repairing fsck: resolve any pending journal ([`recover`]), then check
/// and remove whatever orphans remain. The returned report reflects the
/// *post-repair* state plus what was done (`recovery`,
/// `orphans_removed`); a report that is still not
/// [`clean`](FsckReport::is_clean) means real corruption (bad addresses
/// or unreadable versions) that deleting debris cannot fix.
pub fn fsck_repair<S: ObjectStore>(
    repo: &mut Repository<S>,
    root: Option<&Path>,
) -> Result<FsckReport, VcsError> {
    let recovery = match root {
        Some(root) => Some(recover(repo, root)?),
        None => None,
    };
    let mut report = fsck(repo, root);
    report.recovery = recovery;
    if !report.orphans.is_empty() {
        let orphans = std::mem::take(&mut report.orphans);
        obs::counter!("fsck.orphans_removed", orphans.len() as u64);
        repo.store.remove_batch(&orphans);
        report.orphans_removed = orphans.len();
    }
    Ok(report)
}

/// Convenience composition for server startup and CLI `--repair`:
/// recover + repair an on-disk repository and persist nothing extra
/// (repair touches only the object store; `meta.dsv` is already
/// consistent by the crash model).
pub fn recover_at(
    root: &Path,
    compress: bool,
) -> Result<(Repository<persist::RepoStore>, FsckReport), VcsError> {
    let mut repo = persist::load(root, compress)?;
    let report = fsck_repair(&mut repo, Some(root))?;
    Ok((repo, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::RepackJournal;
    use dsv_core::{PlanSpec, Problem};
    use dsv_storage::StoreError;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "dsv-fsck-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn csv(rows: usize, tag: &str) -> Vec<u8> {
        let mut out = b"id,value\n".to_vec();
        for i in 0..rows {
            out.extend_from_slice(format!("{i},{tag}-{}\n", i * 7).as_bytes());
        }
        out
    }

    fn disk_repo(dir: &Path) -> Repository<persist::RepoStore> {
        let mut repo = Repository::init(persist::RepoStore::Flat(
            dsv_storage::FileStore::open(&dir.join("objects"), true).unwrap(),
        ));
        let mut data = csv(200, "x");
        repo.commit("main", &data, "v0").unwrap();
        for i in 0..5 {
            data.extend_from_slice(format!("{},grown\n", 200 + i).as_bytes());
            repo.commit("main", &data, "grow").unwrap();
        }
        persist::save(&repo, dir).unwrap();
        repo
    }

    #[test]
    fn clean_repo_fscks_clean() {
        let dir = TempDir::new("clean");
        let repo = disk_repo(&dir.0);
        let report = fsck(&repo, Some(&dir.0));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.versions_checked, 6);
        assert!(report.objects_checked >= 6);
        assert!(report.to_string().contains("clean"));
    }

    #[test]
    fn orphans_are_reported_and_repaired() {
        let dir = TempDir::new("orphan");
        let mut repo = disk_repo(&dir.0);
        // Debris: an object no version references.
        repo.store
            .put(&Object::Full {
                data: b"interrupted commit leftovers".to_vec(),
            })
            .unwrap();
        let report = fsck(&repo, Some(&dir.0));
        assert_eq!(report.orphans.len(), 1);
        assert!(!report.is_clean());
        let repaired = fsck_repair(&mut repo, Some(&dir.0)).unwrap();
        assert_eq!(repaired.orphans_removed, 1);
        assert!(repaired.is_clean(), "{repaired}");
        assert!(fsck(&repo, Some(&dir.0)).is_clean());
        // All versions still checkout.
        for v in 0..repo.version_count() as u32 {
            repo.checkout(crate::CommitId(v)).unwrap();
        }
    }

    #[test]
    fn corrupt_object_is_flagged() {
        let dir = TempDir::new("corrupt");
        let repo = disk_repo(&dir.0);
        // Flip bytes in one stored object file.
        let victim = repo.objects[3];
        let hex = victim.to_hex();
        let path = dir.0.join("objects").join(&hex[..2]).join(&hex[2..]);
        std::fs::write(&path, b"garbage that is not the object").unwrap();
        let report = fsck(&repo, Some(&dir.0));
        assert!(!report.is_clean());
        assert!(report.bad_addresses.contains(&victim));
        assert!(!report.unreadable.is_empty(), "chain through v3 breaks");
    }

    #[test]
    fn pending_journal_rolls_forward_and_back() {
        let dir = TempDir::new("journal");
        let mut repo = disk_repo(&dir.0);

        // Roll back: journal names a new plan that never became durable.
        let phantom = repo
            .store
            .put(&Object::Full {
                data: b"packed but never swapped".to_vec(),
            })
            .unwrap();
        let mut new_objects = repo.objects.clone();
        new_objects[0] = phantom;
        persist::write_journal(
            &dir.0,
            &RepackJournal {
                new_objects,
                stale: vec![repo.objects[0]],
            },
        )
        .unwrap();
        assert!(fsck(&repo, Some(&dir.0)).journal_pending);
        let rec = recover(&mut repo, &dir.0).unwrap();
        assert_eq!(rec, Recovery::RolledBack { removed: 1 });
        assert!(!repo.store.contains(phantom));
        assert!(fsck(&repo, Some(&dir.0)).is_clean());

        // Roll forward: metadata already matches the journal; stale
        // leftovers must go.
        let stale = repo
            .store
            .put(&Object::Full {
                data: b"old plan leftovers".to_vec(),
            })
            .unwrap();
        persist::write_journal(
            &dir.0,
            &RepackJournal {
                new_objects: repo.objects.clone(),
                stale: vec![stale],
            },
        )
        .unwrap();
        let rec = recover(&mut repo, &dir.0).unwrap();
        assert_eq!(rec, Recovery::RolledForward { removed: 1 });
        assert!(!repo.store.contains(stale));
        assert!(fsck(&repo, Some(&dir.0)).is_clean());

        // Idempotent on a clean repository.
        assert_eq!(recover(&mut repo, &dir.0).unwrap(), Recovery::Clean);
    }

    #[test]
    fn recover_at_loads_and_repairs() {
        let dir = TempDir::new("recover-at");
        let mut repo = disk_repo(&dir.0);
        repo.optimize_durable(&PlanSpec::new(Problem::MinStorage), &dir.0)
            .unwrap();
        // Simulate a crash that left debris + a journal behind.
        repo.store
            .put(&Object::Full {
                data: b"debris".to_vec(),
            })
            .unwrap();
        persist::write_journal(
            &dir.0,
            &RepackJournal {
                new_objects: repo.objects.clone(),
                stale: vec![],
            },
        )
        .unwrap();
        drop(repo);
        let (reloaded, report) = recover_at(&dir.0, true).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.orphans_removed, 1);
        assert!(matches!(
            report.recovery,
            Some(Recovery::RolledForward { .. })
        ));
        assert_eq!(reloaded.version_count(), 6);
    }

    #[test]
    fn in_memory_repo_fscks_clean_without_a_root() {
        let mut repo = Repository::in_memory();
        repo.commit("main", &csv(50, "m"), "v0").unwrap();
        let report = fsck(&repo, None);
        assert!(report.is_clean());
        assert!(report.objects_checked >= 1);
        assert_eq!(report.recovery, None);
        // Unknown-object errors surface as unreadable versions.
        let missing: Result<Object, StoreError> =
            repo.store.get(ObjectId::from_hex(&"0".repeat(32)).unwrap());
        assert!(missing.is_err());
    }
}
