//! Per-version chunked-cost estimation for the optimizer.
//!
//! The hybrid solvers (dsv-core's three-mode `StorageMode` model) need,
//! for every version, the `⟨Δ_ci, Φ_ci⟩` pair of storing it as a chunk
//! manifest: the **incremental unique-chunk bytes** it would add to the
//! shared store given the chunks earlier versions already contributed,
//! and the work to reassemble it from its manifest. This module computes
//! those pairs by running the gear-hash chunker over the version contents
//! *in version order* — a dry run of [`crate::ChunkStore::put_version`]
//! that touches no object store.
//!
//! Estimates are order-dependent by design: version `i`'s increment
//! assumes versions `0..i` are already chunked. For plans whose chunked
//! set is prefix-closed in version order (in particular the all-chunked
//! plan) the estimates match the executor
//! ([`crate::pack_versions_hybrid`]) byte for byte. For **sparse**
//! chunked subsets they are *optimistic* lower bounds: a chunked version
//! whose earlier neighbours were left un-chunked must physically store
//! chunks the estimate assumed were already present, so the real chunk
//! store can exceed the sum of the estimates the solver used. The
//! executor's [`crate::DedupStats`] (and `OptimizeReport`'s
//! `storage_after`) report the measured footprint, so the gap is always
//! visible; making the estimates subset-aware is a ROADMAP item.

use crate::cdc::{Chunker, ChunkerParams};
use crate::ChunkError;
use dsv_core::CostPair;
use dsv_obs as obs;
use dsv_storage::{Object, ObjectId};
use std::collections::HashSet;

/// Bytes a manifest spends per chunk reference (an [`ObjectId`]).
pub const MANIFEST_ENTRY_BYTES: u64 = 16;

/// Fixed manifest overhead (kind tag + length header).
pub const MANIFEST_BASE_BYTES: u64 = 16;

/// Estimates, for each version in order, the chunked storage/recreation
/// cost pair:
///
/// - `Δ_ci` = unique-chunk bytes version `i` adds on top of versions
///   `0..i`, plus its manifest overhead;
/// - `Φ_ci` = the version's full size plus manifest overhead (checkout
///   fetches the manifest and every chunk — flat in history length).
pub fn chunked_cost_pairs(
    contents: &[Vec<u8>],
    params: ChunkerParams,
) -> Result<Vec<CostPair>, ChunkError> {
    params.validate()?;
    let _span = obs::span!("estimate", versions = contents.len()).entered();
    // Chunking + hashing each version is independent work — run it on the
    // dsv-par work-stealing runtime. The dedup pass below stays
    // sequential over the precomputed chunk ids, so the order-dependent
    // increments are identical at every thread count.
    let chunk_span = obs::span!("chunk");
    let per_version: Vec<Vec<(ObjectId, u64)>> = chunk_span.in_scope(|| {
        dsv_par::par_map(contents, |data| {
            Chunker::new(data, params)
                .map(|chunk| (Object::full_id(chunk), chunk.len() as u64))
                .collect()
        })
    });
    drop(chunk_span);
    let dedup_span = obs::span!("dedup").entered();
    let mut seen: HashSet<ObjectId> = HashSet::new();
    let mut out = Vec::with_capacity(contents.len());
    for (data, chunk_ids) in contents.iter().zip(&per_version) {
        let mut new_bytes = 0u64;
        for &(id, len) in chunk_ids {
            if seen.insert(id) {
                new_bytes += len;
            }
        }
        let manifest = MANIFEST_BASE_BYTES + chunk_ids.len() as u64 * MANIFEST_ENTRY_BYTES;
        out.push(CostPair::new(
            new_bytes + manifest,
            data.len() as u64 + manifest,
        ));
    }
    dedup_span.record("unique_chunks", seen.len());
    drop(dedup_span);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ChunkStore;
    use dsv_storage::MemStore;

    fn params() -> ChunkerParams {
        ChunkerParams::new(64, 256, 1024).unwrap()
    }

    fn overlapping_versions(n: usize) -> Vec<Vec<u8>> {
        let base: Vec<u8> = (0..400)
            .flat_map(|i| format!("{i},shared-row-{},baseline\n", i * 17).into_bytes())
            .collect();
        (0..n)
            .map(|v| {
                let mut data = base.clone();
                data.extend_from_slice(format!("{v},unique-tail-row-{v}\n").as_bytes());
                data
            })
            .collect()
    }

    #[test]
    fn estimates_match_a_real_chunk_store() {
        let versions = overlapping_versions(12);
        let pairs = chunked_cost_pairs(&versions, params()).unwrap();
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        for (v, data) in versions.iter().enumerate() {
            let put = cs.put_version(data).unwrap();
            // Storage estimate = the store's actual new-chunk bytes plus
            // the manifest's reference bytes.
            let manifest = MANIFEST_BASE_BYTES + put.chunks as u64 * MANIFEST_ENTRY_BYTES;
            assert_eq!(
                pairs[v].storage,
                put.new_chunk_bytes + manifest,
                "version {v}"
            );
            assert_eq!(pairs[v].recreation, put.logical_bytes + manifest);
        }
    }

    #[test]
    fn later_versions_pay_only_their_increment() {
        let versions = overlapping_versions(8);
        let pairs = chunked_cost_pairs(&versions, params()).unwrap();
        // The first version pays for the whole base; every later one far
        // less (it shares almost all chunks).
        for (v, p) in pairs.iter().enumerate().skip(1) {
            assert!(
                p.storage * 4 < pairs[0].storage,
                "version {v}: {} vs base {}",
                p.storage,
                pairs[0].storage
            );
        }
    }

    #[test]
    fn recreation_is_flat_in_history() {
        let versions = overlapping_versions(10);
        let pairs = chunked_cost_pairs(&versions, params()).unwrap();
        for (v, p) in pairs.iter().enumerate() {
            let len = versions[v].len() as u64;
            assert!(p.recreation >= len);
            assert!(p.recreation < len + len / 4 + 2 * MANIFEST_BASE_BYTES);
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(matches!(
            chunked_cost_pairs(
                &[],
                ChunkerParams {
                    min_size: 4,
                    avg_size: 256,
                    max_size: 1024
                }
            ),
            Err(ChunkError::BadParams(_))
        ));
    }
}
