//! Deduplicating version storage over any [`ObjectStore`].
//!
//! Each version is split by the content-defined chunker, every chunk is
//! stored once as a content-addressed `Object::Full` (the store's
//! idempotent `put` is the dedup mechanism), and the version itself
//! becomes an `Object::Chunked` manifest — an ordered recipe of chunk
//! ids. Checkout is manifest reassembly via
//! [`dsv_storage::Materializer`], so the chunked regime plugs into the
//! same measured-recreation machinery as the paper's Full and Delta
//! plans.

use crate::cdc::{Chunker, ChunkerParams};
use crate::ChunkError;
use dsv_storage::{Materializer, Object, ObjectId, ObjectStore, PackedVersions, RecreationWork};
use std::collections::HashSet;
use std::ops::Range;

/// What storing one version did (per-version dedup accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutVersion {
    /// Id of the stored manifest (checkout handle).
    pub id: ObjectId,
    /// Number of chunks in the manifest.
    pub chunks: usize,
    /// Chunks that were not already in the store.
    pub new_chunks: usize,
    /// Raw size of the version.
    pub logical_bytes: u64,
    /// Raw bytes of the newly stored chunks (0 for a fully duplicate
    /// version).
    pub new_chunk_bytes: u64,
}

/// Cumulative dedup statistics across many [`ChunkStore::put_version`]
/// calls — the chunked counterpart of what `dsv_storage::repack` reports
/// for Full/Delta plans (pair it with `ObjectStore::total_bytes()` for
/// the physical footprint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Versions stored.
    pub versions: usize,
    /// Total raw bytes across those versions.
    pub logical_bytes: u64,
    /// Total chunk references across all manifests.
    pub total_chunks: usize,
    /// Distinct chunks actually stored.
    pub new_chunks: usize,
    /// Raw bytes of those distinct chunks.
    pub new_chunk_bytes: u64,
}

impl DedupStats {
    /// Folds one version's accounting into the totals.
    pub fn record(&mut self, put: &PutVersion) {
        self.versions += 1;
        self.logical_bytes += put.logical_bytes;
        self.total_chunks += put.chunks;
        self.new_chunks += put.new_chunks;
        self.new_chunk_bytes += put.new_chunk_bytes;
    }

    /// Logical bytes per stored chunk byte (higher = more dedup; 1.0
    /// means no chunk was ever reused).
    pub fn dedup_ratio(&self) -> f64 {
        if self.new_chunk_bytes == 0 {
            return if self.logical_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.logical_bytes as f64 / self.new_chunk_bytes as f64
    }

    /// Fraction of chunk references that hit an already-stored chunk.
    pub fn chunk_hit_rate(&self) -> f64 {
        if self.total_chunks == 0 {
            return 0.0;
        }
        (self.total_chunks - self.new_chunks) as f64 / self.total_chunks as f64
    }
}

/// A deduplicating chunk store view over an [`ObjectStore`].
///
/// The view is stateless (all state lives in the underlying store), so it
/// is cheap to construct per operation and works over `MemStore` and
/// `FileStore` alike.
pub struct ChunkStore<'a, S: ObjectStore + ?Sized> {
    store: &'a S,
    params: ChunkerParams,
}

impl<'a, S: ObjectStore + ?Sized> ChunkStore<'a, S> {
    /// A chunk store over `store`; validates `params`.
    pub fn new(store: &'a S, params: ChunkerParams) -> Result<Self, ChunkError> {
        params.validate()?;
        Ok(ChunkStore { store, params })
    }

    /// The chunking parameters in force.
    pub fn params(&self) -> ChunkerParams {
        self.params
    }

    /// Chunks `data`, stores new chunks and the manifest, and reports
    /// what was deduplicated. Idempotent: re-putting a version stores
    /// nothing new and returns the same id.
    pub fn put_version(&self, data: &[u8]) -> Result<PutVersion, ChunkError> {
        self.put_version_prechunked(data, &prechunk(data, self.params))
    }

    /// Like [`ChunkStore::put_version`], but over chunk boundaries and
    /// content ids already computed by [`prechunk`] — the split the
    /// hybrid packer uses to chunk and hash versions in parallel.
    /// `chunks` must be `prechunk(data, self.params())`; anything else
    /// corrupts the manifest. The store sees two batch ops: one
    /// `contains_batch` probe over the chunk ids and one `put_batch` of
    /// the new chunks plus the manifest.
    pub fn put_version_prechunked(
        &self,
        data: &[u8],
        chunks: &[(Range<usize>, ObjectId)],
    ) -> Result<PutVersion, ChunkError> {
        let batch = plan_chunked_batch(self.store, &[(data, chunks)]);
        self.store.put_batch(&batch.objects)?;
        Ok(batch.puts.into_iter().next().expect("one version planned"))
    }

    /// Reassembles a version from its manifest id, reporting the measured
    /// recreation work.
    pub fn get_version(&self, id: ObjectId) -> Result<(Vec<u8>, RecreationWork), ChunkError> {
        let m = Materializer::new(self.store);
        let (data, work) = m.materialize_measured(id)?;
        Ok((data.as_ref().clone(), work))
    }

    /// The chunk recipe of a stored version. Errors with
    /// [`ChunkError::NotAManifest`] when `id` names a Full or Delta
    /// object.
    pub fn manifest(&self, id: ObjectId) -> Result<Vec<ObjectId>, ChunkError> {
        match self.store.get(id)? {
            Object::Chunked { chunks } => Ok(chunks),
            _ => Err(ChunkError::NotAManifest(id)),
        }
    }
}

/// A version's raw bytes paired with its [`prechunk`] output — the unit
/// [`plan_chunked_batch`] consumes.
pub(crate) type PrechunkedVersion<'a> = (&'a [u8], &'a [(Range<usize>, ObjectId)]);

/// The store writes planned for a sequence of prechunked versions:
/// everything [`plan_chunked_batch`] decided to insert, plus the
/// per-version accounting.
pub(crate) struct ChunkedBatch {
    /// New chunk objects and one manifest per version, in insertion
    /// order — feed to [`ObjectStore::put_batch`].
    pub objects: Vec<Object>,
    /// Per input version, in input order (`id` is the manifest id).
    pub puts: Vec<PutVersion>,
}

/// Simulates inserting `versions` (raw data + its [`prechunk`] output) in
/// order against the store's current contents, **without writing**: one
/// `contains_batch` probe resolves which chunks already exist, and a
/// local set accounts chunks contributed by earlier versions of the same
/// batch. Writing the returned objects through one `put_batch` leaves the
/// store — and the dedup accounting — exactly as sequential per-version
/// inserts would, while letting a sharded store write everything
/// concurrently. The planned objects hold copies of the *new* chunk
/// payloads only, so the buffer is bounded by the deduplicated (not the
/// logical) size of the batch.
pub(crate) fn plan_chunked_batch<S: ObjectStore + ?Sized>(
    store: &S,
    versions: &[PrechunkedVersion<'_>],
) -> ChunkedBatch {
    // One membership probe over the distinct chunk ids of the whole batch.
    let mut distinct: Vec<ObjectId> = Vec::new();
    let mut seen: HashSet<ObjectId> = HashSet::new();
    for (_, chunks) in versions {
        for (_, id) in chunks.iter() {
            if seen.insert(*id) {
                distinct.push(*id);
            }
        }
    }
    let present = store.contains_batch(&distinct);
    // `have` = chunks the store holds now ∪ chunks this batch has already
    // planned — the same visibility a sequential insert loop would see.
    let mut have: HashSet<ObjectId> = distinct
        .iter()
        .zip(&present)
        .filter(|(_, &p)| p)
        .map(|(id, _)| *id)
        .collect();

    let mut objects = Vec::new();
    let mut puts = Vec::with_capacity(versions.len());
    for (data, chunks) in versions {
        let mut chunk_ids = Vec::with_capacity(chunks.len());
        let mut new_chunks = 0usize;
        let mut new_chunk_bytes = 0u64;
        for (span, id) in chunks.iter() {
            if have.insert(*id) {
                new_chunks += 1;
                new_chunk_bytes += span.len() as u64;
                objects.push(Object::Full {
                    data: data[span.clone()].to_vec(),
                });
            }
            chunk_ids.push(*id);
        }
        let manifest = Object::Chunked { chunks: chunk_ids };
        puts.push(PutVersion {
            id: manifest.id(),
            chunks: chunks.len(),
            new_chunks,
            logical_bytes: data.len() as u64,
            new_chunk_bytes,
        });
        objects.push(manifest);
    }
    ChunkedBatch { objects, puts }
}

/// The content-defined chunk spans of `data`, each paired with its
/// content id — the pure (store-free) half of
/// [`ChunkStore::put_version`], split out so callers can chunk and hash
/// many versions in parallel and feed
/// [`plan_chunked_batch`] / [`ChunkStore::put_version_prechunked`].
pub fn prechunk(data: &[u8], params: ChunkerParams) -> Vec<(std::ops::Range<usize>, ObjectId)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for chunk in Chunker::new(data, params) {
        out.push((start..start + chunk.len(), Object::full_id(chunk)));
        start += chunk.len();
    }
    out
}

/// Packs `contents` into `store` as deduplicated chunk manifests — the
/// chunked counterpart of [`dsv_storage::pack_versions`], returning the
/// same [`PackedVersions`] handle (so checkout and measured-recreation
/// reporting are shared with the Full/Delta regimes) plus the dedup
/// statistics.
///
/// The returned plan has every version "materialized" (`parents` all
/// `None`): chunked versions depend on shared chunks, not on each other,
/// which is exactly why their recreation cost stays flat as history
/// grows.
///
/// Chunking and hashing run in parallel on the `dsv_par` runtime; the
/// store then sees one `contains_batch` probe and bounded `put_batch`
/// flushes of every new chunk and manifest, with dedup accounted in
/// version order (identical to sequential per-version inserts at every
/// thread count).
pub fn pack_versions_chunked<S: ObjectStore + ?Sized>(
    store: &S,
    contents: &[Vec<u8>],
    params: ChunkerParams,
) -> Result<(PackedVersions, DedupStats), ChunkError> {
    params.validate()?;
    let prechunked = dsv_par::par_map(contents, |data| prechunk(data, params));
    let versions: Vec<PrechunkedVersion<'_>> = contents
        .iter()
        .zip(&prechunked)
        .map(|(data, chunks)| (data.as_slice(), chunks.as_slice()))
        .collect();
    let batch = plan_chunked_batch(store, &versions);
    let mut writer = dsv_storage::BatchWriter::new(store);
    writer.extend(batch.objects)?;
    writer.finish()?;
    let mut stats = DedupStats::default();
    let mut ids = Vec::with_capacity(contents.len());
    for put in &batch.puts {
        stats.record(put);
        ids.push(put.id);
    }
    Ok((
        PackedVersions {
            ids,
            parents: vec![None; contents.len()],
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_storage::MemStore;

    fn params() -> ChunkerParams {
        ChunkerParams::new(64, 256, 1024).unwrap()
    }

    /// Versions sharing a large common prefix with per-version tails.
    fn overlapping_versions(n: usize) -> Vec<Vec<u8>> {
        let base: Vec<u8> = (0..400)
            .flat_map(|i| format!("{i},shared-row-{},baseline\n", i * 17).into_bytes())
            .collect();
        (0..n)
            .map(|v| {
                let mut data = base.clone();
                data.extend_from_slice(format!("{v},unique-tail-row-{v}\n").as_bytes());
                data
            })
            .collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        let data = overlapping_versions(1).remove(0);
        let put = cs.put_version(&data).unwrap();
        assert_eq!(put.logical_bytes, data.len() as u64);
        assert_eq!(put.new_chunks, put.chunks, "first version is all-new");
        let (out, work) = cs.get_version(put.id).unwrap();
        assert_eq!(out, data);
        assert_eq!(work.objects_fetched, 1 + put.chunks);
    }

    #[test]
    fn duplicate_version_stores_nothing_new() {
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        let data = overlapping_versions(1).remove(0);
        let first = cs.put_version(&data).unwrap();
        let objects_after_first = store.len();
        let second = cs.put_version(&data).unwrap();
        assert_eq!(first.id, second.id);
        assert_eq!(second.new_chunks, 0);
        assert_eq!(second.new_chunk_bytes, 0);
        assert_eq!(store.len(), objects_after_first);
    }

    #[test]
    fn overlapping_versions_dedup_heavily() {
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        let versions = overlapping_versions(20);
        let mut stats = DedupStats::default();
        for v in &versions {
            stats.record(&cs.put_version(v).unwrap());
        }
        assert_eq!(stats.versions, 20);
        assert!(
            stats.dedup_ratio() > 5.0,
            "dedup ratio {} too low",
            stats.dedup_ratio()
        );
        assert!(stats.chunk_hit_rate() > 0.8, "{}", stats.chunk_hit_rate());
        // Physical store far below materializing everything.
        let logical: u64 = versions.iter().map(|v| v.len() as u64).sum();
        assert!(store.total_bytes() < logical / 4);
        // And every version still checks out byte-exact.
        for (v, data) in versions.iter().enumerate() {
            let put = cs.put_version(data).unwrap(); // idempotent re-put
            let (out, _) = cs.get_version(put.id).unwrap();
            assert_eq!(&out, data, "version {v}");
        }
    }

    #[test]
    fn manifest_accessor_checks_kind() {
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        let put = cs.put_version(b"0123456789".repeat(40).as_slice()).unwrap();
        let recipe = cs.manifest(put.id).unwrap();
        assert_eq!(recipe.len(), put.chunks);
        let full = store
            .put(&Object::Full {
                data: b"not a manifest".to_vec(),
            })
            .unwrap();
        assert!(matches!(
            cs.manifest(full),
            Err(ChunkError::NotAManifest(_))
        ));
    }

    #[test]
    fn pack_versions_chunked_matches_packed_interface() {
        let store = MemStore::new(false);
        let versions = overlapping_versions(8);
        let (packed, stats) = pack_versions_chunked(&store, &versions, params()).unwrap();
        assert_eq!(packed.ids.len(), 8);
        assert!(packed.parents.iter().all(|p| p.is_none()));
        assert_eq!(stats.versions, 8);
        let m = Materializer::new(&store);
        for (v, data) in versions.iter().enumerate() {
            let (out, work) = packed.checkout(&m, v as u32).unwrap();
            assert_eq!(&out, data);
            // Chunked recreation reads ~the version itself, independent of
            // how many versions precede it (no chains).
            assert!(work.bytes_read < 2 * data.len() as u64);
        }
    }

    #[test]
    fn empty_version_is_storable() {
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        let put = cs.put_version(b"").unwrap();
        assert_eq!(put.chunks, 0);
        let (out, _) = cs.get_version(put.id).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn stats_handle_degenerate_cases() {
        let empty = DedupStats::default();
        assert_eq!(empty.dedup_ratio(), 1.0);
        assert_eq!(empty.chunk_hit_rate(), 0.0);
    }
}
