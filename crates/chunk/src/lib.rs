#![warn(missing_docs)]

//! Content-defined chunking and deduplication — the third storage regime.
//!
//! The paper stores every version either fully materialized or as a delta
//! from one parent, trading storage against a recreation cost that grows
//! with delta-chain length. Chunk-level deduplication (RStore's regime)
//! is the third point on that tradeoff:
//!
//! - **storage** near the delta plans' — only content no earlier version
//!   contributed is stored, because chunks are content-addressed and the
//!   store's idempotent `put` deduplicates them;
//! - **recreation** near the materialized plan's — checking out a version
//!   fetches exactly its own chunks, so cost is proportional to the
//!   version's size and *flat in history length* (no chains to replay).
//!
//! The crate provides:
//!
//! - [`cdc`]: a Gear-hash chunker with FastCDC-style normalized
//!   cut-points ([`Chunker`], [`ChunkerParams`]) — deterministic, min/max
//!   bounded, and boundary-stable under insertions;
//! - [`store`]: [`ChunkStore`], which content-addresses chunks through
//!   `dsv_storage::ObjectId`, records per-version manifests
//!   (`Object::Chunked` recipes), and measures dedup ([`DedupStats`]);
//! - [`pack_versions_chunked`]: drop-in counterpart of
//!   `dsv_storage::pack_versions`, so the chunked substrate is compared
//!   head-to-head with the paper's Full/Delta plans by the same measured
//!   storage/recreation reporting;
//! - [`estimate`]: [`chunked_cost_pairs`], the per-version incremental
//!   chunked-cost estimates that feed the optimizer's three-mode
//!   `CostMatrix` (hybrid Full/Delta/Chunked plans);
//! - [`hybrid`]: [`pack_versions_hybrid`], the executor for solver-chosen
//!   per-version `StorageMode` plans.
//!
//! ```
//! use dsv_chunk::{ChunkStore, ChunkerParams};
//! use dsv_storage::{MemStore, ObjectStore};
//!
//! let store = MemStore::new(false);
//! let chunks = ChunkStore::new(&store, ChunkerParams::default()).unwrap();
//! let v0 = b"header\n".repeat(2000);
//! let mut v1 = v0.clone();
//! v1.extend_from_slice(b"one more row\n");
//! let p0 = chunks.put_version(&v0).unwrap();
//! let p1 = chunks.put_version(&v1).unwrap();
//! // The second version reuses almost every chunk of the first.
//! assert!(p1.new_chunk_bytes < v1.len() as u64 / 2);
//! assert_eq!(chunks.get_version(p1.id).unwrap().0, v1);
//! ```

pub mod cdc;
pub mod estimate;
pub mod hybrid;
pub mod store;

pub use cdc::{chunk_spans, Chunker, ChunkerParams};
pub use estimate::chunked_cost_pairs;
pub use hybrid::pack_versions_hybrid;
pub use store::{pack_versions_chunked, prechunk, ChunkStore, DedupStats, PutVersion};

use dsv_storage::{ObjectId, StoreError};

/// Errors from the chunking substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Chunker parameters violate their invariants.
    BadParams(&'static str),
    /// The object exists but is not a chunk manifest.
    NotAManifest(ObjectId),
    /// The underlying object store failed.
    Store(StoreError),
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::BadParams(what) => write!(f, "bad chunker parameters: {what}"),
            ChunkError::NotAManifest(id) => write!(f, "object {id} is not a chunk manifest"),
            ChunkError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ChunkError {}

impl From<StoreError> for ChunkError {
    fn from(e: StoreError) -> Self {
        ChunkError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_informatively() {
        assert!(ChunkError::BadParams("min too small")
            .to_string()
            .contains("min too small"));
        let id = ObjectId::for_bytes(b"x");
        assert!(ChunkError::NotAManifest(id)
            .to_string()
            .contains(&id.to_hex()));
        let wrapped: ChunkError = StoreError::ChainTooLong.into();
        assert!(wrapped.to_string().contains("chain"));
    }
}
