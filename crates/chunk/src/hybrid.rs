//! Executing hybrid storage plans: Full / Delta / Chunked per version.
//!
//! [`pack_versions_hybrid`] is the three-mode counterpart of
//! [`dsv_storage::pack_versions`]: it realizes a solver-chosen
//! [`StorageMode`] assignment against real bytes — materialized versions
//! become `Object::Full`, delta versions become `Object::Delta` chains,
//! and chunked versions are split by the content-defined chunker into
//! deduplicated `Object::Chunked` manifests. Delta versions may chain off
//! chunked (or materialized) parents; the [`dsv_storage::Materializer`]
//! resolves either transparently at checkout.

use crate::store::{plan_chunked_batch, prechunk, DedupStats, PrechunkedVersion};
use crate::{ChunkError, ChunkerParams};
use dsv_core::StorageMode;
use dsv_delta::bytes_delta;
use dsv_obs as obs;
use dsv_storage::{dependency_order, Object, ObjectId, ObjectStore, PackedVersions};
use std::ops::Range;

/// Per-version payload computed in the parallel phase of
/// [`pack_versions_hybrid`]: everything that depends only on the raw
/// contents, leaving the assembly phase store-free and the store itself
/// a stream of bounded `put_batch` flushes.
enum Prepared {
    /// Materialized versions need no precomputation.
    Full,
    /// Chunk spans + content ids ([`prechunk`]) for a chunked version.
    Chunks(Vec<(Range<usize>, ObjectId)>),
    /// The encoded byte delta against the parent's contents.
    Delta(Vec<u8>),
}

/// Packs `contents` into `store` following the per-version `modes`.
///
/// Chunked versions are stored in index order (matching how
/// [`crate::estimate::chunked_cost_pairs`] accounts increments); delta
/// versions are stored parents-first. The delta assignment must be a
/// valid forest (every chain ends at a materialized or chunked version);
/// [`StoreError::ChainTooLong`] is reported otherwise. Returns the packed
/// handle plus the dedup statistics of the chunked subset.
pub fn pack_versions_hybrid<S: ObjectStore + ?Sized>(
    store: &S,
    contents: &[Vec<u8>],
    modes: &[StorageMode],
    params: ChunkerParams,
) -> Result<(PackedVersions, DedupStats), ChunkError> {
    assert_eq!(contents.len(), modes.len(), "one mode entry per version");
    params.validate()?;
    let n = contents.len();
    let _pack = obs::span!("pack", versions = n, packer = "hybrid").entered();

    // Dependency order: delta parents before children; root modes
    // (materialized and chunked) are forest roots.
    let delta_parents: Vec<Option<u32>> = modes.iter().map(|m| m.delta_parent()).collect();
    let order = dependency_order(&delta_parents)?;

    // Parallel phase: everything derivable from raw contents alone —
    // chunk boundaries + content hashes for chunked versions, encoded
    // byte deltas for delta versions — on the dsv-par runtime.
    let versions: Vec<u32> = (0..n as u32).collect();
    let prepare_span = obs::span!("prepare");
    let mut prepared = prepare_span.in_scope(|| {
        dsv_par::par_map(&versions, |&v| match modes[v as usize] {
            StorageMode::Materialized => Prepared::Full,
            StorageMode::Chunked => Prepared::Chunks(prechunk(&contents[v as usize], params)),
            StorageMode::Delta(p) => {
                let ops = bytes_delta::diff(&contents[p as usize], &contents[v as usize]);
                Prepared::Delta(bytes_delta::encode(&ops))
            }
        })
    });
    drop(prepare_span);

    // Assembly phase, store-free: chunked versions first, in index order,
    // so dedup increments match the estimator's accounting; then fulls
    // and deltas in dependency order, each delta resolving its parent's
    // content address from the object just assembled (a chunked parent's
    // manifest id is known by then). Object ids are content addresses, so
    // nothing needs to be written to name anything.
    let mut chunked_versions: Vec<usize> = Vec::new();
    let mut chunked_inputs: Vec<PrechunkedVersion<'_>> = Vec::new();
    for v in 0..n {
        if let Prepared::Chunks(chunks) = &prepared[v] {
            chunked_versions.push(v);
            chunked_inputs.push((contents[v].as_slice(), chunks.as_slice()));
        }
    }
    let plan_span = obs::span!("plan_chunks", chunked = chunked_inputs.len());
    let chunk_batch = plan_span.in_scope(|| plan_chunked_batch(store, &chunked_inputs));
    drop(plan_span);
    let mut stats = DedupStats::default();
    let mut ids: Vec<Option<ObjectId>> = vec![None; n];
    for (&v, put) in chunked_versions.iter().zip(&chunk_batch.puts) {
        stats.record(put);
        ids[v] = Some(put.id);
    }
    // Write phase: the whole mixed plan — chunks, manifests, fulls,
    // deltas — streamed through bounded `put_batch` flushes (concurrent
    // per-shard writes on a sharded store, peak buffering capped by the
    // BatchWriter). The store state is identical to the old sequential
    // write loops at every shard and thread count.
    let _write = obs::span!("write").entered();
    let mut writer = dsv_storage::BatchWriter::new(store);
    writer.extend(chunk_batch.objects)?;
    for v in order {
        let obj = match std::mem::replace(&mut prepared[v as usize], Prepared::Full) {
            Prepared::Chunks(_) => continue, // planned above
            Prepared::Full => Object::Full {
                data: contents[v as usize].clone(),
            },
            Prepared::Delta(delta) => {
                let base_id = ids[modes[v as usize].delta_parent().expect("delta mode") as usize]
                    .expect("parents packed first");
                Object::Delta {
                    base: base_id,
                    delta,
                }
            }
        };
        ids[v as usize] = Some(obj.id());
        writer.push(obj)?;
    }
    writer.finish()?;

    Ok((
        PackedVersions {
            ids: ids.into_iter().map(|i| i.expect("all packed")).collect(),
            parents: delta_parents,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsv_storage::{Materializer, MemStore, StoreError};

    fn params() -> ChunkerParams {
        ChunkerParams::new(64, 256, 1024).unwrap()
    }

    /// A chain of overlapping versions (appends off a shared base).
    fn contents(n: usize) -> Vec<Vec<u8>> {
        let mut out = vec![b"line one\nline two\nline three\n".repeat(60)];
        for i in 1..n {
            let mut next = out[i - 1].clone();
            next.extend_from_slice(format!("version {i} extra payload row\n").as_bytes());
            out.push(next);
        }
        out
    }

    #[test]
    fn mixed_plan_roundtrips_byte_exact() {
        let store = MemStore::new(false);
        let cs = contents(6);
        // v0 chunked; v1, v2 deltas off it; v3 materialized; v4 delta off
        // v3; v5 chunked.
        let modes = vec![
            StorageMode::Chunked,
            StorageMode::Delta(0),
            StorageMode::Delta(1),
            StorageMode::Materialized,
            StorageMode::Delta(3),
            StorageMode::Chunked,
        ];
        let (packed, stats) = pack_versions_hybrid(&store, &cs, &modes, params()).unwrap();
        assert_eq!(stats.versions, 2);
        let m = Materializer::new(&store);
        for v in 0..6u32 {
            let (data, _) = packed.checkout(&m, v).unwrap();
            assert_eq!(data, cs[v as usize], "v{v}");
        }
        // The delta chain off the chunked root really is a delta.
        let (_, work) = packed.checkout(&m, 1).unwrap();
        assert!(work.objects_fetched > 2, "chunk manifest + chunks + delta");
    }

    #[test]
    fn all_chunked_matches_pack_versions_chunked() {
        let store_a = MemStore::new(false);
        let store_b = MemStore::new(false);
        let cs = contents(5);
        let modes = vec![StorageMode::Chunked; 5];
        let (packed_a, stats_a) = pack_versions_hybrid(&store_a, &cs, &modes, params()).unwrap();
        let (packed_b, stats_b) =
            crate::store::pack_versions_chunked(&store_b, &cs, params()).unwrap();
        assert_eq!(packed_a.ids, packed_b.ids);
        assert_eq!(stats_a, stats_b);
        assert_eq!(store_a.total_bytes(), store_b.total_bytes());
    }

    #[test]
    fn all_binary_matches_pack_versions() {
        let store_a = MemStore::new(false);
        let store_b = MemStore::new(false);
        let cs = contents(5);
        let plan: Vec<Option<u32>> = (0..5u32).map(|i| i.checked_sub(1)).collect();
        let modes: Vec<StorageMode> = plan.iter().map(|&p| StorageMode::from(p)).collect();
        let (packed_a, stats) = pack_versions_hybrid(&store_a, &cs, &modes, params()).unwrap();
        let packed_b =
            dsv_storage::pack_versions(&store_b, &cs, &plan, dsv_storage::PackOptions::default())
                .unwrap();
        assert_eq!(packed_a.ids, packed_b.ids);
        assert_eq!(stats, DedupStats::default());
        assert_eq!(store_a.total_bytes(), store_b.total_bytes());
    }

    #[test]
    fn cyclic_delta_plan_rejected() {
        let store = MemStore::new(false);
        let cs = contents(3);
        let modes = vec![
            StorageMode::Delta(1),
            StorageMode::Delta(0),
            StorageMode::Chunked,
        ];
        assert!(matches!(
            pack_versions_hybrid(&store, &cs, &modes, params()),
            Err(ChunkError::Store(StoreError::ChainTooLong))
        ));
    }
}
