//! Content-defined chunking: a Gear-hash chunker with FastCDC-style
//! normalized cut-points.
//!
//! Chunk boundaries are chosen where a rolling hash of the trailing bytes
//! matches a mask, so they depend on *content*, not on byte offsets:
//! inserting bytes mid-version shifts every downstream offset but leaves
//! downstream boundaries (and therefore chunk identities) intact once the
//! hash re-synchronizes — the property that makes chunk-level
//! deduplication effective on shifted/overlapping versions, where
//! fixed-size blocking deduplicates nothing.
//!
//! The cut rule is FastCDC's normalized variant (Xia et al., ATC'16): no
//! boundary before `min_size`, a *harder* mask (more bits) before
//! `avg_size` and an *easier* one after, and a forced cut at `max_size`.
//! Normalization pulls the chunk-size distribution toward `avg_size`
//! without the long tail of plain Gear chunking.

use crate::ChunkError;
use std::ops::Range;

/// Per-byte Gear constants, generated deterministically at compile time
/// (splitmix64 over the byte value), so chunking is stable across builds
/// and platforms.
static GEAR: [u64; 256] = build_gear_table();

const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        // splitmix64 finalizer over a fixed-seeded counter.
        let mut z = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        table[i] = z ^ (z >> 31);
        i += 1;
    }
    table
}

/// Chunk-size parameters. `avg_size` must be a power of two (it defines
/// the cut masks); sizes must satisfy `16 ≤ min ≤ avg ≤ max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerParams {
    /// No boundary is placed before this many bytes.
    pub min_size: usize,
    /// Target mean chunk size (a power of two).
    pub avg_size: usize,
    /// A boundary is forced at this many bytes.
    pub max_size: usize,
}

impl Default for ChunkerParams {
    /// Defaults tuned for this workspace's dataset versions (tens of KB):
    /// 256 B / 1 KiB / 8 KiB.
    fn default() -> Self {
        ChunkerParams {
            min_size: 256,
            avg_size: 1024,
            max_size: 8192,
        }
    }
}

impl From<ChunkerParams> for dsv_core::ChunkingSpec {
    /// The planner-side mirror of these parameters (dsv-core cannot
    /// depend on this crate, so `PlanSpec` carries a plain
    /// [`dsv_core::ChunkingSpec`] instead).
    fn from(p: ChunkerParams) -> Self {
        dsv_core::ChunkingSpec {
            min_size: p.min_size,
            avg_size: p.avg_size,
            max_size: p.max_size,
        }
    }
}

impl TryFrom<dsv_core::ChunkingSpec> for ChunkerParams {
    type Error = ChunkError;

    /// Validates and adopts a planner-side chunking spec.
    fn try_from(spec: dsv_core::ChunkingSpec) -> Result<Self, ChunkError> {
        ChunkerParams::new(spec.min_size, spec.avg_size, spec.max_size)
    }
}

impl ChunkerParams {
    /// Validated constructor.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Result<Self, ChunkError> {
        let params = ChunkerParams {
            min_size,
            avg_size,
            max_size,
        };
        params.validate()?;
        Ok(params)
    }

    /// Checks the size invariants (see type docs).
    pub fn validate(&self) -> Result<(), ChunkError> {
        if self.min_size < 16 {
            return Err(ChunkError::BadParams("min_size must be at least 16"));
        }
        if !self.avg_size.is_power_of_two() {
            return Err(ChunkError::BadParams("avg_size must be a power of two"));
        }
        if self.min_size > self.avg_size || self.avg_size > self.max_size {
            return Err(ChunkError::BadParams(
                "sizes must satisfy min <= avg <= max",
            ));
        }
        Ok(())
    }

    /// Mask applied before the average point (two extra bits: boundaries
    /// are 4x *less* likely than `1/avg`).
    fn mask_hard(&self) -> u64 {
        (self.avg_size as u64) * 4 - 1
    }

    /// Mask applied after the average point (two fewer bits: boundaries
    /// are 4x *more* likely than `1/avg`).
    fn mask_easy(&self) -> u64 {
        ((self.avg_size as u64) / 4).max(1) - 1
    }

    /// Length of the chunk starting at `data[0]` (FastCDC cut rule).
    fn cut(&self, data: &[u8]) -> usize {
        let len = data.len();
        if len <= self.min_size {
            return len;
        }
        let bound = len.min(self.max_size);
        let center = bound.min(self.avg_size);
        let (mask_hard, mask_easy) = (self.mask_hard(), self.mask_easy());
        let mut hash: u64 = 0;
        let mut i = self.min_size;
        while i < center {
            hash = (hash << 1).wrapping_add(GEAR[data[i] as usize]);
            if hash & mask_hard == 0 {
                return i + 1;
            }
            i += 1;
        }
        while i < bound {
            hash = (hash << 1).wrapping_add(GEAR[data[i] as usize]);
            if hash & mask_easy == 0 {
                return i + 1;
            }
            i += 1;
        }
        bound
    }
}

/// Iterator over the content-defined chunks of a byte slice.
///
/// ```
/// use dsv_chunk::{Chunker, ChunkerParams};
///
/// let data = vec![7u8; 40_000];
/// let params = ChunkerParams::default();
/// let chunks: Vec<&[u8]> = Chunker::new(&data, params).collect();
/// assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), data.len());
/// assert!(chunks.iter().all(|c| c.len() <= params.max_size));
/// ```
#[derive(Debug, Clone)]
pub struct Chunker<'a> {
    data: &'a [u8],
    pos: usize,
    params: ChunkerParams,
}

impl<'a> Chunker<'a> {
    /// Chunks `data` under `params` (assumed valid; see
    /// [`ChunkerParams::new`]).
    pub fn new(data: &'a [u8], params: ChunkerParams) -> Self {
        Chunker {
            data,
            pos: 0,
            params,
        }
    }
}

impl<'a> Iterator for Chunker<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.data.len() {
            return None;
        }
        let rest = &self.data[self.pos..];
        let cut = self.params.cut(rest);
        self.pos += cut;
        Some(&rest[..cut])
    }
}

/// The chunk spans of `data` as byte ranges (offsets into `data`).
pub fn chunk_spans(data: &[u8], params: ChunkerParams) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut start = 0;
    for chunk in Chunker::new(data, params) {
        spans.push(start..start + chunk.len());
        start += chunk.len();
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_spec_mirrors_default_params() {
        // The planner-side ChunkingSpec documents that its defaults match
        // ours; pin the invariant through the conversion pair.
        assert_eq!(
            dsv_core::ChunkingSpec::default(),
            dsv_core::ChunkingSpec::from(ChunkerParams::default())
        );
        assert_eq!(
            ChunkerParams::try_from(dsv_core::ChunkingSpec::default()).unwrap(),
            ChunkerParams::default()
        );
    }

    /// Deterministic pseudo-text: repetitive structure with enough
    /// variation for boundaries to land everywhere.
    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut s = seed | 1;
        while out.len() < len {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.extend_from_slice(format!("row-{},col-{}\n", s % 1000, s % 97).as_bytes());
        }
        out.truncate(len);
        out
    }

    const P: ChunkerParams = ChunkerParams {
        min_size: 64,
        avg_size: 256,
        max_size: 1024,
    };

    #[test]
    fn reassembly_is_exact() {
        for seed in 1..6 {
            let data = sample(20_000, seed);
            let joined: Vec<u8> = Chunker::new(&data, P).flatten().copied().collect();
            assert_eq!(joined, data);
        }
    }

    #[test]
    fn sizes_respect_bounds() {
        let data = sample(50_000, 3);
        let chunks: Vec<&[u8]> = Chunker::new(&data, P).collect();
        assert!(chunks.len() > 10, "expected many chunks");
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= P.max_size, "chunk {i} over max");
            if i + 1 < chunks.len() {
                assert!(c.len() >= P.min_size, "interior chunk {i} under min");
            }
        }
        let mean: usize = chunks.iter().map(|c| c.len()).sum::<usize>() / chunks.len();
        assert!(
            (P.avg_size / 4..=P.max_size / 2).contains(&mean),
            "mean chunk size {mean} far from target {}",
            P.avg_size
        );
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = sample(10_000, 9);
        let a = chunk_spans(&data, P);
        let b = chunk_spans(&data, P);
        assert_eq!(a, b);
    }

    #[test]
    fn insertion_shifts_only_local_boundaries() {
        let base = sample(40_000, 5);
        let mut edited = base.clone();
        let at = edited.len() / 2;
        edited.splice(at..at, b"INSERTED PAYLOAD".iter().copied());

        let set = |d: &[u8]| -> std::collections::HashSet<Vec<u8>> {
            Chunker::new(d, P).map(|c| c.to_vec()).collect()
        };
        let (a, b) = (set(&base), set(&edited));
        let changed = a.symmetric_difference(&b).count();
        assert!(
            changed <= 6,
            "one insertion disturbed {changed} chunks (want O(1))"
        );
    }

    #[test]
    fn small_and_empty_inputs() {
        assert_eq!(Chunker::new(&[], P).count(), 0);
        let tiny = b"below min size".to_vec();
        let chunks: Vec<&[u8]> = Chunker::new(&tiny, P).collect();
        assert_eq!(chunks, vec![tiny.as_slice()]);
    }

    #[test]
    fn params_are_validated() {
        assert!(ChunkerParams::new(64, 256, 1024).is_ok());
        assert!(matches!(
            ChunkerParams::new(4, 256, 1024),
            Err(ChunkError::BadParams(_))
        ));
        assert!(matches!(
            ChunkerParams::new(64, 300, 1024), // not a power of two
            Err(ChunkError::BadParams(_))
        ));
        assert!(matches!(
            ChunkerParams::new(512, 256, 1024), // min > avg
            Err(ChunkError::BadParams(_))
        ));
        assert!(matches!(
            ChunkerParams::new(64, 2048, 1024), // avg > max
            Err(ChunkError::BadParams(_))
        ));
    }

    #[test]
    fn spans_tile_the_input() {
        let data = sample(13_337, 2);
        let spans = chunk_spans(&data, P);
        let mut expected_start = 0;
        for s in &spans {
            assert_eq!(s.start, expected_start);
            expected_start = s.end;
        }
        assert_eq!(expected_start, data.len());
    }
}
