//! The chunked and hybrid packers must leave byte-identical stores at
//! every shard count and every thread count: the batch write surface
//! (`contains_batch` probe + one `put_batch`) is an IO optimization,
//! never a semantic change — the same invariant the plain packers keep
//! (see `dsv-storage`'s sharded_equivalence tests).

use dsv_chunk::{pack_versions_chunked, pack_versions_hybrid, ChunkerParams};
use dsv_core::StorageMode;
use dsv_storage::{MemStore, ObjectStore, ShardedStore};

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn params() -> ChunkerParams {
    ChunkerParams::new(64, 256, 1024).unwrap()
}

/// Overlapping versions: a shared base with per-version tails.
fn versions(n: usize) -> Vec<Vec<u8>> {
    let base: Vec<u8> = (0..300)
        .flat_map(|i| format!("{i},shared-row-{},baseline\n", i * 17).into_bytes())
        .collect();
    (0..n)
        .map(|v| {
            let mut data = base.clone();
            for k in 0..=v {
                data.extend_from_slice(format!("{k},tail-row-{}\n", k * 31).as_bytes());
            }
            data
        })
        .collect()
}

#[test]
fn chunked_pack_is_identical_across_shards_and_threads() {
    let contents = versions(12);
    let reference = MemStore::new(false);
    let (ref_packed, ref_stats) = pack_versions_chunked(&reference, &contents, params()).unwrap();

    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            dsv_par::with_thread_count(threads, || {
                let store = ShardedStore::build(shards, |_| MemStore::new(false));
                let (packed, stats) = pack_versions_chunked(&store, &contents, params()).unwrap();
                assert_eq!(packed.ids, ref_packed.ids, "s{shards} t{threads}: ids");
                assert_eq!(stats, ref_stats, "s{shards} t{threads}: dedup stats");
                assert_eq!(
                    store.total_bytes(),
                    reference.total_bytes(),
                    "s{shards} t{threads}: bytes"
                );
                assert_eq!(
                    store.len(),
                    reference.len(),
                    "s{shards} t{threads}: objects"
                );
            });
        }
    }
}

#[test]
fn hybrid_pack_is_identical_across_shards_and_threads() {
    let contents = versions(12);
    // A genuinely mixed plan: chunked roots, delta chains off both kinds
    // of root, one materialized version.
    let modes: Vec<StorageMode> = (0..12u32)
        .map(|v| match v {
            0 | 6 => StorageMode::Chunked,
            3 => StorageMode::Materialized,
            _ => StorageMode::Delta(v - 1),
        })
        .collect();

    let reference = MemStore::new(false);
    let (ref_packed, ref_stats) =
        pack_versions_hybrid(&reference, &contents, &modes, params()).unwrap();

    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            dsv_par::with_thread_count(threads, || {
                let store = ShardedStore::build(shards, |_| MemStore::new(false));
                let (packed, stats) =
                    pack_versions_hybrid(&store, &contents, &modes, params()).unwrap();
                assert_eq!(packed.ids, ref_packed.ids, "s{shards} t{threads}: ids");
                assert_eq!(stats, ref_stats, "s{shards} t{threads}: dedup stats");
                assert_eq!(
                    store.total_bytes(),
                    reference.total_bytes(),
                    "s{shards} t{threads}: bytes"
                );
                assert_eq!(
                    store.len(),
                    reference.len(),
                    "s{shards} t{threads}: objects"
                );
            });
        }
    }
}
