//! Property tests for the chunking invariants: exact reassembly,
//! determinism, size bounds, and boundary stability under insertions.

use dsv_chunk::{chunk_spans, pack_versions_chunked, ChunkStore, Chunker, ChunkerParams};
use dsv_storage::{Materializer, MemStore, ObjectStore};
use proptest::prelude::*;
use std::collections::HashSet;

fn params() -> ChunkerParams {
    ChunkerParams::new(64, 256, 1024).unwrap()
}

/// Arbitrary content: repetitive CSV-like lines (the workloads' shape),
/// long enough to span many chunks.
fn arb_content() -> impl Strategy<Value = Vec<u8>> {
    (1u64..1_000_000, 8usize..40).prop_map(|(seed, kilobytes)| {
        let mut out = Vec::with_capacity(kilobytes * 1024);
        let mut s = seed | 1;
        while out.len() < kilobytes * 1024 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.extend_from_slice(
                format!("{},record-{},field-{}\n", s % 9973, s % 613, s % 47).as_bytes(),
            );
        }
        out
    })
}

/// A version plus an edited copy: a small splice at an arbitrary point.
fn arb_edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, usize)> {
    (
        arb_content(),
        "[a-z0-9 ,.]{1,64}",
        any::<prop::sample::Index>(),
    )
        .prop_map(|(base, insert, idx)| {
            let pos = idx.index(base.len());
            let mut edited = base.clone();
            edited.splice(pos..pos, insert.bytes());
            (base, edited, insert.len())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunks concatenate back to exactly the input.
    #[test]
    fn reassembly_is_byte_exact(data in arb_content()) {
        let joined: Vec<u8> = Chunker::new(&data, params()).flatten().copied().collect();
        prop_assert_eq!(joined, data);
    }

    /// Chunking the same bytes twice yields identical spans.
    #[test]
    fn chunking_is_deterministic(data in arb_content()) {
        prop_assert_eq!(chunk_spans(&data, params()), chunk_spans(&data, params()));
    }

    /// Every chunk respects max; every chunk but the last respects min.
    #[test]
    fn chunk_sizes_respect_bounds(data in arb_content()) {
        let p = params();
        let chunks: Vec<&[u8]> = Chunker::new(&data, p).collect();
        prop_assert!(!chunks.is_empty());
        for (i, c) in chunks.iter().enumerate() {
            prop_assert!(c.len() <= p.max_size, "chunk {} has {} > max", i, c.len());
            if i + 1 < chunks.len() {
                prop_assert!(c.len() >= p.min_size, "chunk {} has {} < min", i, c.len());
            }
        }
    }

    /// A single mid-file insertion disturbs only O(1) chunks: boundaries
    /// re-synchronize, so almost all chunks stay shared between the two
    /// versions.
    #[test]
    fn insertion_changes_o1_boundaries((base, edited, _len) in arb_edited_pair()) {
        let chunk_set = |d: &[u8]| -> HashSet<Vec<u8>> {
            Chunker::new(d, params()).map(|c| c.to_vec()).collect()
        };
        let (a, b) = (chunk_set(&base), chunk_set(&edited));
        // Symmetric difference counts the disturbed chunks of BOTH
        // versions, and resynchronization after the splice can take a few
        // chunks on each side — but the count must stay constant, not
        // scale with the ~100+ chunks of the version.
        let disturbed = a.symmetric_difference(&b).count();
        let total = a.len().max(b.len());
        prop_assert!(
            disturbed <= 16 && disturbed <= total / 4,
            "insertion disturbed {} chunks of {}",
            disturbed, total
        );
    }

    /// Dedup ratio across an edited pair stays high: storing the edited
    /// version on top of the base adds only the disturbed chunks.
    #[test]
    fn dedup_ratio_stays_high((base, edited, _len) in arb_edited_pair()) {
        let store = MemStore::new(false);
        let cs = ChunkStore::new(&store, params()).unwrap();
        cs.put_version(&base).unwrap();
        let second = cs.put_version(&edited).unwrap();
        // New bytes for the edit are bounded by a few chunks, not by the
        // version size (10x headroom over the worst observed case).
        let bound = (10 * params().max_size) as u64;
        prop_assert!(
            second.new_chunk_bytes <= bound,
            "edit stored {} new bytes",
            second.new_chunk_bytes
        );
    }

    /// End to end through the shared packing interface: chunk-packed
    /// versions check out byte-exact.
    #[test]
    fn packed_versions_check_out(data in arb_content(), edits in proptest::collection::vec("[a-z]{4,24}", 1..6)) {
        let mut versions = vec![data];
        for e in &edits {
            let mut next = versions.last().unwrap().clone();
            let pos = next.len() / 2;
            next.splice(pos..pos, e.bytes());
            versions.push(next);
        }
        let store = MemStore::new(false);
        let (packed, stats) = pack_versions_chunked(&store, &versions, params()).unwrap();
        prop_assert_eq!(stats.versions, versions.len());
        let m = Materializer::new(&store);
        for (v, expected) in versions.iter().enumerate() {
            let (out, _) = packed.checkout(&m, v as u32).unwrap();
            prop_assert_eq!(&out, expected, "version {} corrupted", v);
        }
        // Physical bytes stay well below materializing every version.
        let logical: u64 = versions.iter().map(|v| v.len() as u64).sum();
        if versions.len() >= 3 {
            prop_assert!(store.total_bytes() < logical / 2);
        }
    }
}
